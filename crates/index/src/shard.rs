//! Sharded multi-tree index: partition strategies, the checksummed
//! `.fzsm` shard manifest, and [`ShardedIndex`].
//!
//! A single R-tree caps the dataset at one file's worth of pages and one
//! root's worth of fanout. `ShardedIndex` partitions the object set into
//! `S` independent shards — each its own [`PagedRTree`] file reachable
//! through the ordinary [`NodeAccess`] seam — described by a small
//! manifest file (`.fzsm`, normative spec in `docs/FORMAT.md`). The
//! query crate runs AKNN as scatter-gather over the shard forest with a
//! shared k-th-best bound τ, so a sharded index answers **byte-identical**
//! to a single tree over the same objects (proven by
//! `crates/query/tests/shard_determinism.rs`).
//!
//! Two [`ShardAssign`] strategies ship:
//!
//! * [`StrCenterAssign`] — STR tiling over the objects' expected centers
//!   (the support-MBR center): spatially coherent shards, the default.
//!   Queries near one tile resolve almost entirely inside one shard, so
//!   the shared-τ bound prunes the rest at their roots.
//! * [`MassClassAssign`] — membership-mass classes: objects sorted by
//!   their recorded point count (the stored proxy for membership mass —
//!   denser objects carry more probability mass) and sliced into `S`
//!   classes, heaviest class first. This mirrors the weight-class forest
//!   of rembed's `WRTree`; useful when heavy objects should compact and
//!   cache separately from light ones.
//!
//! Every shard file sits beside the manifest and is named
//! `<stem>.shard<i>.fzpt`; the manifest stores *relative* paths so the
//! whole family can be moved as a directory.

use crate::access::NodeAccess;
use crate::node::RTreeConfig;
use crate::overlay::{delta_path_for, OverlayRTree};
use crate::paged::PagedRTree;
use fuzzy_core::ObjectSummary;
use fuzzy_geom::Mbr;
use fuzzy_store::format::{fnv1a, Decoder, Encoder};
use fuzzy_store::StoreError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes of a shard-manifest file.
pub const SHARD_MAGIC: [u8; 4] = *b"FZSM";
/// Current `.fzsm` format version.
pub const SHARD_VERSION: u16 = 1;
/// Fixed header length: magic, version, dims, strategy + reserved,
/// shard count, object count, checksum.
const HEADER_LEN: usize = 4 + 2 + 2 + 4 + 4 + 8 + 8;
/// Trailer: whole-file checksum + magic.
const TRAILER_LEN: usize = 8 + 4;
/// Upper bound on the shard count a manifest may declare (a corrupted
/// count must not drive a huge allocation).
const MAX_SHARDS: u32 = 1 << 16;
/// Upper bound on one relative shard path, in bytes.
const MAX_PATH_LEN: usize = 4096;

fn corrupt(reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt { reason: reason.into() }
}

/// A partitioning strategy: maps every object summary to a shard id.
///
/// Implementations must be **deterministic** (the same input always
/// yields the same assignment — sharded builds are reproducible byte for
/// byte) and **total**: exactly one id in `0..shards` per input item.
/// Empty shards are allowed; the builder writes them as empty trees.
pub trait ShardAssign<const D: usize> {
    /// Strategy name, as reported by `fkq info`.
    fn name(&self) -> &'static str;

    /// Strategy code recorded in the manifest header.
    fn code(&self) -> u8;

    /// One shard id (`< shards`) per item, in item order.
    fn assign(&self, items: &[ObjectSummary<D>], shards: usize) -> Vec<u32>;
}

/// STR tiling over expected centers: sort by the support-MBR center,
/// recursively slice into slabs, and cut each slab into contiguous runs —
/// exactly `shards` tiles whose sizes differ by at most one object.
#[derive(Clone, Copy, Debug, Default)]
pub struct StrCenterAssign;

impl<const D: usize> ShardAssign<D> for StrCenterAssign {
    fn name(&self) -> &'static str {
        "str-centers"
    }

    fn code(&self) -> u8 {
        0
    }

    fn assign(&self, items: &[ObjectSummary<D>], shards: usize) -> Vec<u32> {
        let n = items.len();
        let parts = shards.clamp(1, n.max(1)).min(shards.max(1));
        let mut order: Vec<usize> = (0..n).collect();
        let mut out = vec![0u32; n];
        let mut next = 0u32;
        str_parts(&mut order, items, 0, parts, &mut |group: &[usize]| {
            for &i in group {
                out[i] = next;
            }
            next += 1;
        });
        out
    }
}

/// Recursive exact-`parts` STR split. Unlike the capacity-driven tiling of
/// the bulk loader, the number of output groups is fixed up front: the
/// global group sizes come from [`crate::bulk::even_partition`], slabs
/// take whole runs of consecutive groups, and the recursion sorts each
/// slab along the next dimension. Ties break by object id, so the
/// partition is deterministic on any input.
fn str_parts<const D: usize>(
    order: &mut [usize],
    items: &[ObjectSummary<D>],
    dim: usize,
    parts: usize,
    emit: &mut impl FnMut(&[usize]),
) {
    let n = order.len();
    if parts <= 1 {
        emit(order);
        return;
    }
    let axis = dim % D;
    let center = |i: usize| items[i].support_mbr.center().coords()[axis];
    order.sort_by(|&a, &b| center(a).total_cmp(&center(b)).then(items[a].id.cmp(&items[b].id)));
    let sizes = crate::bulk::even_partition(n, parts);
    if dim + 1 >= D {
        for &(start, end) in &sizes {
            emit(&order[start..end]);
        }
        return;
    }
    let dims_left = D - (dim % D);
    let slabs = ((parts as f64).powf(1.0 / dims_left as f64).round() as usize).clamp(1, parts);
    let slab_parts = crate::bulk::even_partition(parts, slabs);
    for &(pa, pb) in &slab_parts {
        let (ia, ib) = (sizes[pa].0, sizes[pb - 1].1);
        str_parts(&mut order[ia..ib], items, dim + 1, pb - pa, emit);
    }
}

/// Membership-mass classes: objects sorted by recorded point count
/// (descending — the stored proxy for membership mass; summaries do not
/// carry the raw membership sum) with id tie-break, sliced into `shards`
/// contiguous classes of near-equal population. Shard 0 is the heaviest
/// class.
#[derive(Clone, Copy, Debug, Default)]
pub struct MassClassAssign;

impl<const D: usize> ShardAssign<D> for MassClassAssign {
    fn name(&self) -> &'static str {
        "mass-class"
    }

    fn code(&self) -> u8 {
        1
    }

    fn assign(&self, items: &[ObjectSummary<D>], shards: usize) -> Vec<u32> {
        let n = items.len();
        let parts = shards.clamp(1, n.max(1)).min(shards.max(1));
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            items[b].point_count.cmp(&items[a].point_count).then(items[a].id.cmp(&items[b].id))
        });
        let mut out = vec![0u32; n];
        for (class, (start, end)) in crate::bulk::even_partition(n, parts).into_iter().enumerate() {
            for &i in &order[start..end] {
                out[i] = class as u32;
            }
        }
        out
    }
}

/// The strategy a manifest code names, if known.
pub fn strategy_name(code: u8) -> Option<&'static str> {
    match code {
        0 => Some("str-centers"),
        1 => Some("mass-class"),
        _ => None,
    }
}

/// One manifest row: a shard file and what the manifest claims about it.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardMeta<const D: usize> {
    /// Shard file path, **relative to the manifest's directory**.
    pub path: String,
    /// Number of objects the shard file must index.
    pub objects: u64,
    /// Union of the shard's support MBRs at build time (the empty
    /// sentinel for an empty shard). Used to route inserts and order
    /// shard visits; conservative, never load-bearing for correctness.
    pub region: Mbr<D>,
}

/// The decoded `.fzsm` manifest: strategy plus one row per shard.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest<const D: usize> {
    /// Strategy code (see [`strategy_name`]).
    pub strategy: u8,
    /// Per-shard rows, shard id = row index.
    pub shards: Vec<ShardMeta<D>>,
}

impl<const D: usize> ShardManifest<D> {
    /// Total object count over all shards.
    pub fn object_count(&self) -> u64 {
        self.shards.iter().map(|s| s.objects).sum()
    }

    /// Human-readable strategy name.
    pub fn strategy_name(&self) -> &'static str {
        strategy_name(self.strategy).unwrap_or("unknown")
    }

    /// Shard ids ordered by ascending distance between `mbr` and each
    /// shard's region (ties by shard id). Visiting shards in this order
    /// lets the scatter-gather search establish a tight τ in the nearest
    /// shard and prune the rest at their roots.
    pub fn visit_order(&self, mbr: &Mbr<D>) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by(|&a, &b| {
            let da = self.shards[a].region.min_dist_sq(mbr);
            let db = self.shards[b].region.min_dist_sq(mbr);
            da.total_cmp(&db).then(a.cmp(&b))
        });
        order
    }

    /// The shard a new object routes to: minimum region distance from the
    /// object's support MBR, ties to the lowest shard id. Deterministic;
    /// regions are never updated in place, so routing is a placement
    /// heuristic — correctness never depends on it (deletes search every
    /// shard, queries visit every non-pruned shard).
    pub fn route(&self, mbr: &Mbr<D>) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, s) in self.shards.iter().enumerate() {
            let d = if s.region.is_empty() { f64::INFINITY } else { s.region.min_dist_sq(mbr) };
            if d < best_d {
                best = i;
                best_d = d;
            }
        }
        best
    }

    /// Serialize to the normative `.fzsm` byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(HEADER_LEN + TRAILER_LEN + self.shards.len() * 64);
        e.bytes(&SHARD_MAGIC);
        e.u16(SHARD_VERSION);
        e.u16(D as u16);
        e.u32(self.strategy as u32);
        e.u32(self.shards.len() as u32);
        e.u64(self.object_count());
        let header_sum = fnv1a(e.as_bytes());
        e.u64(header_sum);
        for s in &self.shards {
            let row_start = e.len();
            e.u16(s.path.len() as u16);
            e.bytes(s.path.as_bytes());
            e.u64(s.objects);
            for i in 0..D {
                e.f64(s.region.lo(i));
                e.f64(s.region.hi(i));
            }
            let row_sum = fnv1a(&e.as_bytes()[row_start..]);
            e.u64(row_sum);
        }
        let file_sum = fnv1a(e.as_bytes());
        e.u64(file_sum);
        e.bytes(&SHARD_MAGIC);
        e.into_bytes()
    }

    /// Decode and fully validate a `.fzsm` byte image. Every structural
    /// violation — truncation at any byte, a flipped bit anywhere, an
    /// unknown strategy, hostile counts — surfaces as a typed
    /// [`StoreError`]; this function never panics on malformed input
    /// (test-enforced by `crates/index/tests/shard_manifest_corruption.rs`).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(corrupt("shard manifest shorter than header + trailer"));
        }
        if bytes[..4] != SHARD_MAGIC {
            return Err(corrupt("bad shard manifest magic"));
        }
        if bytes[bytes.len() - 4..] != SHARD_MAGIC {
            return Err(corrupt("bad shard manifest trailer magic"));
        }
        let body_end = bytes.len() - TRAILER_LEN;
        let stored_file_sum = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
        let computed = fnv1a(&bytes[..body_end]);
        if stored_file_sum != computed {
            return Err(corrupt(format!(
                "shard manifest checksum mismatch: stored {stored_file_sum:x}, computed {computed:x}"
            )));
        }
        let mut d = Decoder::new(&bytes[..body_end]);
        let _magic = d.bytes(4)?;
        let version = d.u16()?;
        if version != SHARD_VERSION {
            return Err(StoreError::VersionMismatch { found: version, expected: SHARD_VERSION });
        }
        let dims = d.u16()?;
        if dims as usize != D {
            return Err(StoreError::DimensionMismatch { found: dims, expected: D as u16 });
        }
        let strategy_raw = d.u32()?;
        let strategy =
            u8::try_from(strategy_raw).map_err(|_| corrupt("strategy code out of range"))?;
        if strategy_name(strategy).is_none() {
            return Err(corrupt(format!("unknown shard strategy code {strategy}")));
        }
        let shard_count = d.u32()?;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return Err(corrupt(format!("implausible shard count {shard_count}")));
        }
        let object_count = d.u64()?;
        let header_sum = d.u64()?;
        let computed_header = fnv1a(&bytes[..HEADER_LEN - 8]);
        if header_sum != computed_header {
            return Err(corrupt("shard manifest header checksum mismatch"));
        }
        let mut shards = Vec::with_capacity(shard_count as usize);
        for row in 0..shard_count {
            let row_start = body_end - d.remaining();
            let path_len = d.u16()? as usize;
            if path_len == 0 || path_len > MAX_PATH_LEN {
                return Err(corrupt(format!("shard {row}: implausible path length {path_len}")));
            }
            let path_bytes = d.bytes(path_len)?;
            let path = std::str::from_utf8(path_bytes)
                .map_err(|_| corrupt(format!("shard {row}: path is not UTF-8")))?
                .to_string();
            if Path::new(&path).is_absolute() {
                return Err(corrupt(format!(
                    "shard {row}: path {path:?} is absolute (must be manifest-relative)"
                )));
            }
            let objects = d.u64()?;
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for i in 0..D {
                lo[i] = d.f64()?;
                hi[i] = d.f64()?;
            }
            let row_end = body_end - d.remaining();
            let row_sum = d.u64()?;
            let computed_row = fnv1a(&bytes[row_start..row_end]);
            if row_sum != computed_row {
                return Err(corrupt(format!("shard {row}: row checksum mismatch")));
            }
            // The empty sentinel (lo=+∞, hi=−∞ on every axis) marks an
            // empty shard; any other inverted axis is a corrupt region.
            let is_sentinel = (0..D).all(|i| lo[i] == f64::INFINITY && hi[i] == f64::NEG_INFINITY);
            let region = if is_sentinel {
                Mbr::empty()
            } else if (0..D).any(|i| lo[i] > hi[i] || !lo[i].is_finite() || !hi[i].is_finite()) {
                return Err(corrupt(format!("shard {row}: inverted or non-finite region")));
            } else {
                Mbr::new(lo, hi)
            };
            shards.push(ShardMeta { path, objects, region });
        }
        if d.remaining() != 0 {
            return Err(corrupt(format!(
                "{} trailing bytes after the last shard row",
                d.remaining()
            )));
        }
        let manifest = Self { strategy, shards };
        if manifest.object_count() != object_count {
            return Err(corrupt(format!(
                "header says {object_count} objects, rows sum to {}",
                manifest.object_count()
            )));
        }
        Ok(manifest)
    }

    /// Write the manifest to `path` (whole-file rewrite; a torn write
    /// fails the trailing checksum on reload).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Load and validate a manifest file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }
}

/// The shard-file name for shard `i` of a manifest named `<stem>.fzsm`.
pub fn shard_file_name(manifest_path: &Path, i: usize) -> String {
    let stem = manifest_path.file_stem().and_then(|s| s.to_str()).unwrap_or("index");
    format!("{stem}.shard{i}.fzpt")
}

/// Resolve a manifest-relative shard path against the manifest location.
pub fn resolve_shard_path(manifest_path: &Path, relative: &str) -> PathBuf {
    match manifest_path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(relative),
        _ => PathBuf::from(relative),
    }
}

/// A partitioned multi-tree index: `S` independent [`PagedRTree`] files
/// described by one `.fzsm` manifest. Each shard is an ordinary
/// [`NodeAccess`] backend; the scatter-gather query engine
/// (`fuzzy_query::ShardedQueryEngine`) searches them with a shared τ
/// bound. Cloning shares the shard file handles (`Arc` bump).
#[derive(Clone, Debug)]
pub struct ShardedIndex<const D: usize> {
    manifest: ShardManifest<D>,
    manifest_path: PathBuf,
    shards: Vec<Arc<PagedRTree<D>>>,
}

impl<const D: usize> ShardedIndex<D> {
    /// Partition `summaries` with `strategy` and write the whole family:
    /// one `.fzpt` file per shard beside the manifest, then the manifest
    /// itself. `shards` is clamped to at least 1 and at most the object
    /// count (never builds more shards than objects; an empty input
    /// builds one empty shard).
    pub fn build(
        summaries: Vec<ObjectSummary<D>>,
        shards: usize,
        strategy: &dyn ShardAssign<D>,
        config: RTreeConfig,
        manifest_path: impl AsRef<Path>,
        page_size: u32,
    ) -> Result<Self, StoreError> {
        let manifest_path = manifest_path.as_ref();
        let n = summaries.len();
        let effective = shards.clamp(1, n.max(1));
        let assignment = strategy.assign(&summaries, effective);
        assert_eq!(assignment.len(), n, "strategy must assign every object");
        let mut groups: Vec<Vec<ObjectSummary<D>>> = vec![Vec::new(); effective];
        for (s, shard) in summaries.into_iter().zip(&assignment) {
            let shard = *shard as usize;
            assert!(shard < effective, "strategy assigned shard {shard} of {effective}");
            groups[shard].push(s);
        }
        let mut rows = Vec::with_capacity(effective);
        for (i, group) in groups.into_iter().enumerate() {
            let file = shard_file_name(manifest_path, i);
            let region = group.iter().fold(Mbr::empty(), |acc, s| acc.union(&s.support_mbr));
            let objects = group.len() as u64;
            let shard_path = resolve_shard_path(manifest_path, &file);
            PagedRTree::bulk_write(group, config, &shard_path, page_size)?;
            rows.push(ShardMeta { path: file, objects, region });
        }
        let manifest = ShardManifest { strategy: strategy.code(), shards: rows };
        manifest.save(manifest_path)?;
        Self::open_with_cache(manifest_path, crate::paged::DEFAULT_CACHE_PAGES)
    }

    /// Open a sharded index with the default per-shard buffer pool.
    pub fn open(manifest_path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_cache(manifest_path, crate::paged::DEFAULT_CACHE_PAGES)
    }

    /// Open a sharded index. Every shard file the manifest names is
    /// opened and checked against its row: a missing file (stale path)
    /// surfaces as [`StoreError::Io`], a shard holding the wrong number
    /// of objects as [`StoreError::Corrupt`]. `cache_pages` is the
    /// buffer-pool capacity **per shard**.
    pub fn open_with_cache(
        manifest_path: impl AsRef<Path>,
        cache_pages: usize,
    ) -> Result<Self, StoreError> {
        let manifest_path = manifest_path.as_ref().to_path_buf();
        let manifest = ShardManifest::<D>::load(&manifest_path)?;
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for (i, row) in manifest.shards.iter().enumerate() {
            let path = resolve_shard_path(&manifest_path, &row.path);
            let tree = PagedRTree::open_with_cache(&path, cache_pages)?;
            if NodeAccess::len(&tree) as u64 != row.objects {
                return Err(corrupt(format!(
                    "manifest says shard {i} holds {} objects, file {} stores {}",
                    row.objects,
                    path.display(),
                    NodeAccess::len(&tree)
                )));
            }
            shards.push(Arc::new(tree));
        }
        Ok(Self { manifest, manifest_path, shards })
    }

    /// Open every shard **delta-aware**: shards with a `.fzdl` sidecar
    /// replay it, the rest get an empty overlay. This is the mutable view
    /// the CLI and the server build dynamic engines from.
    pub fn open_overlays(
        manifest_path: impl AsRef<Path>,
        cache_pages: usize,
    ) -> Result<(ShardManifest<D>, Vec<OverlayRTree<D>>), StoreError> {
        let manifest_path = manifest_path.as_ref();
        let manifest = ShardManifest::<D>::load(manifest_path)?;
        let mut overlays = Vec::with_capacity(manifest.shards.len());
        for row in &manifest.shards {
            let path = resolve_shard_path(manifest_path, &row.path);
            let overlay = if delta_path_for(&path).exists() {
                OverlayRTree::open_with_cache(&path, cache_pages)?
            } else {
                OverlayRTree::new(Arc::new(PagedRTree::open_with_cache(&path, cache_pages)?))?
            };
            overlays.push(overlay);
        }
        Ok((manifest, overlays))
    }

    /// The decoded manifest.
    pub fn manifest(&self) -> &ShardManifest<D> {
        &self.manifest
    }

    /// The manifest file path.
    pub fn path(&self) -> &Path {
        &self.manifest_path
    }

    /// The opened shard trees, shard id = index.
    pub fn shards(&self) -> &[Arc<PagedRTree<D>>] {
        &self.shards
    }

    /// Absolute path of shard `i`'s index file.
    pub fn shard_path(&self, i: usize) -> PathBuf {
        resolve_shard_path(&self.manifest_path, &self.manifest.shards[i].path)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total indexed objects over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| NodeAccess::len(s.as_ref())).sum()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;

    fn summary(id: u64, x: f64, y: f64, points: usize) -> ObjectSummary<2> {
        let mut pts = vec![Point::new([x, y])];
        let mut mus = vec![1.0];
        for j in 1..points {
            pts.push(Point::new([x + 0.1 * j as f64, y + 0.07 * j as f64]));
            mus.push(0.9 / j as f64);
        }
        ObjectSummary::from_object(&FuzzyObject::new(ObjectId(id), pts, mus).unwrap())
    }

    fn grid(n: u64) -> Vec<ObjectSummary<2>> {
        (0..n)
            .map(|i| {
                summary(
                    i,
                    (i % 16) as f64 * 2.0 + i as f64 * 1.3e-3,
                    (i / 16) as f64 * 2.0 + i as f64 * 0.9e-3,
                    2 + (i % 5) as usize,
                )
            })
            .collect()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fz-shard-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn assignments_partition_the_input() {
        let items = grid(137);
        for shards in [1usize, 2, 3, 4, 8, 137, 500] {
            for strategy in [&StrCenterAssign as &dyn ShardAssign<2>, &MassClassAssign] {
                let eff = shards.clamp(1, items.len());
                let got = strategy.assign(&items, eff);
                assert_eq!(got.len(), items.len(), "{} S={shards}", strategy.name());
                let mut counts = vec![0usize; eff];
                for &s in &got {
                    assert!((s as usize) < eff, "{} S={shards}", strategy.name());
                    counts[s as usize] += 1;
                }
                // Both strategies slice through even_partition: near-equal
                // population, no empty shard when S ≤ n.
                let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
                assert!(max - min <= 1, "{} S={shards}: counts {counts:?}", strategy.name());
            }
        }
    }

    #[test]
    fn assignments_are_deterministic() {
        let items = grid(90);
        let a = ShardAssign::<2>::assign(&StrCenterAssign, &items, 4);
        let b = ShardAssign::<2>::assign(&StrCenterAssign, &items, 4);
        assert_eq!(a, b);
        let a = ShardAssign::<2>::assign(&MassClassAssign, &items, 5);
        let b = ShardAssign::<2>::assign(&MassClassAssign, &items, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn manifest_roundtrips() {
        let m = ShardManifest::<2> {
            strategy: 0,
            shards: vec![
                ShardMeta {
                    path: "ix.shard0.fzpt".into(),
                    objects: 40,
                    region: Mbr::new([0.0, 0.0], [5.0, 5.0]),
                },
                ShardMeta { path: "ix.shard1.fzpt".into(), objects: 0, region: Mbr::empty() },
            ],
        };
        let bytes = m.encode();
        let back = ShardManifest::<2>::decode(&bytes).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.object_count(), 40);
        assert_eq!(back.strategy_name(), "str-centers");
    }

    #[test]
    fn build_open_and_query_each_shard() {
        let dir = tmp_dir("build");
        let manifest = dir.join("ix.fzsm");
        let items = grid(200);
        let cfg = RTreeConfig { max_entries: 16, min_fill: 0.4 };
        let ix =
            ShardedIndex::build(items.clone(), 4, &StrCenterAssign, cfg, &manifest, 4096).unwrap();
        assert_eq!(ix.shard_count(), 4);
        assert_eq!(ix.len(), 200);
        // Every id lands in exactly one shard.
        let mut seen: Vec<u64> = Vec::new();
        for shard in ix.shards() {
            let mut stack = vec![NodeAccess::root_id(shard.as_ref())];
            while let Some(id) = stack.pop() {
                let read = shard.read_node(id).unwrap();
                match read.view() {
                    crate::access::NodeView::Nodes(kids) => stack.extend(kids.iter().map(|c| c.id)),
                    crate::access::NodeView::Entries(es) => seen.extend(es.iter().map(|e| e.id.0)),
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..200u64).collect::<Vec<_>>());
        // Reopen from disk.
        let re = ShardedIndex::<2>::open(&manifest).unwrap();
        assert_eq!(re.len(), 200);
        assert_eq!(re.manifest(), ix.manifest());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn more_shards_than_objects_clamps() {
        let dir = tmp_dir("clamp");
        let manifest = dir.join("ix.fzsm");
        let cfg = RTreeConfig::default();
        let ix =
            ShardedIndex::build(grid(3), 8, &StrCenterAssign, cfg, &manifest, 16 * 1024).unwrap();
        assert_eq!(ix.shard_count(), 3);
        let ix =
            ShardedIndex::<2>::build(Vec::new(), 4, &MassClassAssign, cfg, &manifest, 16 * 1024)
                .unwrap();
        assert_eq!(ix.shard_count(), 1);
        assert!(ix.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_shard_object_count_is_rejected() {
        let dir = tmp_dir("count");
        let manifest = dir.join("ix.fzsm");
        let cfg = RTreeConfig::default();
        ShardedIndex::build(grid(30), 2, &StrCenterAssign, cfg, &manifest, 16 * 1024).unwrap();
        let mut m = ShardManifest::<2>::load(&manifest).unwrap();
        m.shards[1].objects += 1;
        m.save(&manifest).unwrap();
        assert!(matches!(
            ShardedIndex::<2>::open(&manifest).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_shard_path_is_a_typed_error() {
        let dir = tmp_dir("stale");
        let manifest = dir.join("ix.fzsm");
        let cfg = RTreeConfig::default();
        let ix =
            ShardedIndex::build(grid(20), 2, &StrCenterAssign, cfg, &manifest, 16 * 1024).unwrap();
        std::fs::remove_file(ix.shard_path(1)).unwrap();
        assert!(matches!(ShardedIndex::<2>::open(&manifest).unwrap_err(), StoreError::Io { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn visit_order_and_route_prefer_the_nearest_region() {
        let m = ShardManifest::<2> {
            strategy: 0,
            shards: vec![
                ShardMeta {
                    path: "a".into(),
                    objects: 1,
                    region: Mbr::new([10.0, 10.0], [20.0, 20.0]),
                },
                ShardMeta {
                    path: "b".into(),
                    objects: 1,
                    region: Mbr::new([0.0, 0.0], [5.0, 5.0]),
                },
            ],
        };
        let near_b = Mbr::new([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(m.visit_order(&near_b), vec![1, 0]);
        assert_eq!(m.route(&near_b), 1);
        let near_a = Mbr::new([15.0, 15.0], [16.0, 16.0]);
        assert_eq!(m.visit_order(&near_a), vec![0, 1]);
        assert_eq!(m.route(&near_a), 0);
    }
}
