//! Offline stand-in for the `rand` crate, exposing exactly the API subset
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` and `Rng::gen_range`.
//!
//! The build environment has no crates.io access, so the workspace depends
//! on this crate by path. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast and statistically solid for dataset
//! generation. The stream differs from the real `rand::rngs::StdRng`
//! (ChaCha12), which only matters if datasets generated here must be
//! bit-identical to ones generated with the real crate.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from raw words via `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw a value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain approach is irrelevant here but
                // this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                // Widen to u128 so `e - s + 1` cannot overflow even for
                // s..=T::MAX ranges.
                let span = (e - s) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                s + hi as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "gen_range: empty range");
        // Sampling the half-open range and clamping keeps the result inside
        // the bounds (the naive `end + ε` rewrite could exceed `end`).
        (s + f64::sample(rng) * (e - s)).min(e)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (e.g. `rng.gen::<f64>()` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen::<f64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            let n = r.gen_range(3..17usize);
            assert!((3..17).contains(&n));
            let m = r.gen_range(0u32..=20);
            assert!(m <= 20);
        }
    }

    #[test]
    fn inclusive_ranges_never_exceed_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&x));
            // Extreme integer ranges must not overflow the span arithmetic.
            let big = r.gen_range(1u64..=u64::MAX);
            assert!(big >= 1);
            let byte = r.gen_range(250u8..=255);
            assert!(byte >= 250);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(99);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[(r.gen::<f64>() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b} far from uniform");
        }
    }
}
