//! Offline stand-in for the `criterion` crate, implementing the API subset
//! this workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `BatchSize`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it reports the best mean
//! over a handful of timed samples as plain text — good enough for
//! relative comparisons while the environment has no crates.io access.
//! `--test` on the command line (what `cargo test --benches` passes) runs
//! every routine exactly once so benches double as smoke tests.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayed parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// How much setup output `iter_batched` amortizes per batch. The stand-in
/// always runs setup once per iteration, so this is a no-op marker.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration (what the stand-in always does).
    PerIteration,
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration of the measured routine.
    result_ns: f64,
}

impl Bencher {
    /// Time a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result_ns = 0.0;
            return;
        }
        // Warm up and estimate a per-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let mean = start.elapsed().as_nanos() as f64 / per_sample as f64;
            best = best.min(mean);
        }
        self.result_ns = best;
    }

    /// Time a routine that consumes a fresh input per iteration. Setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            self.result_ns = 0.0;
            return;
        }
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let mean = start.elapsed().as_nanos() as f64 / per_sample as f64;
            best = best.min(mean);
        }
        self.result_ns = best;
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        size: BatchSize,
    ) {
        self.iter_batched(setup_wrap(&mut setup), |mut i| black_box(routine(&mut i)), size);
    }
}

fn setup_wrap<'a, I, S: FnMut() -> I>(setup: &'a mut S) -> impl FnMut() -> I + 'a {
    move || setup()
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine against one input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { test_mode: self.criterion.test_mode, result_ns: 0.0 };
        f(&mut b, input);
        self.report(&id.into(), &b);
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { test_mode: self.criterion.test_mode, result_ns: 0.0 };
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    /// End the group (marker for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if self.criterion.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id.id);
        } else {
            println!("{}/{}: {}", self.name, id.id, format_ns(b.result_ns));
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:.3} ms/iter", ns / 1_000_000.0)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Read harness-relevant flags (`--test`) from the command line,
    /// ignoring the rest of criterion's CLI surface.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("").bench_function(id, f);
        self
    }

    /// Print the closing line.
    pub fn final_summary(&self) {
        if !self.test_mode {
            println!("(criterion stand-in: best-of-sample means, no statistics)");
        }
    }
}

/// Bundle benchmark functions into a group callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = &$config;
            $( $target(c); )+
        }
    };
}

/// Generate `main` for a bench target (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_plausible_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
