//! Offline stand-in for the `proptest` crate, implementing the API subset
//! this workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges, tuples
//!   (arity 2–6), [`Just`] and [`collection::vec`](prop::collection::vec);
//! * [`any`] for a few primitive types;
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`], with a `PROPTEST_CASES` env override.
//!
//! Differences from the real crate: failing inputs are **not shrunk** (the
//! failing case's seed and index are printed instead — runs are
//! deterministic per test name, so failures reproduce exactly), and
//! `any::<f64>()` samples a bounded uniform range rather than the full
//! bit-pattern space.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG handed to strategies while generating one case.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Raw 64-bit word (exposed for strategy implementations).
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// A generator of values of one type. No shrinking in this stand-in.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategies behind references sample like their referent (the `proptest!`
/// macro samples through `&strategy` so by-value strategies can be reused
/// across cases).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "empty f64 range strategy");
        // Hit both endpoints occasionally — boundary values find the bugs.
        match rng.below(32) {
            0 => s,
            1 => e,
            _ => s + rng.unit_f64() * (e - s),
        }
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty integer range strategy");
                let span = (e - s) as usize + 1;
                s + rng.below(span) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Bounded uniform (±1e6) plus occasional exact zero; the real crate
    /// explores the full bit-pattern space including NaN/∞.
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(16) {
            0 => 0.0,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i32, i64);

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (subset: `vec`).
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Element-count specifications accepted by [`vec()`].
        pub trait IntoSizeRange {
            /// Inclusive-lower, exclusive-upper bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        /// Strategy producing `Vec`s of `elem` with a length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            VecStrategy { elem, lo, hi }
        }

        /// Output of [`vec()`].
        pub struct VecStrategy<S> {
            elem: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.lo + rng.below(self.hi - self.lo);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Per-block test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases (still overridden by `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }.env_override()
    }

    fn env_override(self) -> Self {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(cases) => ProptestConfig { cases },
            None => self,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }.env_override()
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (panics; no shrink phase follows).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result = {
                    $(let $pat = $crate::Strategy::sample(&&($strat), &mut rng);)*
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }))
                };
                if let Err(payload) = result {
                    eprintln!(
                        "proptest stub: {} failed at case {case}/{} (deterministic per test name; \
                         set PROPTEST_CASES to narrow)",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5.0..5.0f64, n in 1u32..=9, (a, b) in (0.0..1.0f64, any::<bool>())) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..=9).contains(&n));
            prop_assert!((0.0..1.0).contains(&a));
            let _ = b;
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0.0..1.0f64).prop_map(|x| x * 2.0), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| (0.0..2.0).contains(&x)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
