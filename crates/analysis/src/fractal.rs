//! Fractal dimension estimators for 2-d point datasets.
//!
//! The cost model of Section 5 needs the Hausdorff dimension `D₀`
//! (box counting) and the correlation dimension `D₂` (pair counting).
//! For a uniform dataset both are ≈ 2, which is what the paper plugs into
//! Equations 6–8; clustered datasets have lower values, which the `sec5`
//! experiment reports.

use crate::regression::linear_fit;
use fuzzy_geom::{Mbr, Point};
use std::collections::HashMap;

/// Box-counting (Hausdorff) dimension `D₀`: slope of
/// `log N(r)` vs `log (1/r)` over geometrically spaced grid sizes.
/// Returns `None` for degenerate inputs.
pub fn box_counting_dimension(points: &[Point<2>], scales: usize) -> Option<f64> {
    if points.len() < 10 || scales < 2 {
        return None;
    }
    let mbr = Mbr::from_points(points.iter())?;
    let extent = mbr.extent(0).max(mbr.extent(1));
    if extent <= 0.0 {
        return None;
    }
    let mut samples = Vec::with_capacity(scales);
    for s in 0..scales {
        // Grid cells per axis: 2^(s+1).
        let cells = 1usize << (s + 1);
        let cell = extent / cells as f64;
        let mut occupied: HashMap<(i64, i64), ()> = HashMap::new();
        for p in points {
            let ix = ((p.x() - mbr.lo(0)) / cell).floor() as i64;
            let iy = ((p.y() - mbr.lo(1)) / cell).floor() as i64;
            occupied.insert((ix, iy), ());
        }
        // Stop when boxes ≈ points (saturation biases the slope).
        if occupied.len() * 2 > points.len() {
            break;
        }
        samples.push(((1.0 / cell).ln(), (occupied.len() as f64).ln()));
    }
    if samples.len() < 2 {
        return None;
    }
    linear_fit(&samples).map(|f| f.slope)
}

/// Correlation dimension `D₂`: slope of `log C(r)` vs `log r`, where
/// `C(r)` is the fraction of point pairs within distance `r`. Pair
/// counting is grid-accelerated; `radii` geometric steps are sampled
/// between `r_min` and `r_max` (fractions of the dataset extent).
pub fn correlation_dimension(points: &[Point<2>], radii: usize) -> Option<f64> {
    let n = points.len();
    if n < 20 || radii < 2 {
        return None;
    }
    let mbr = Mbr::from_points(points.iter())?;
    let extent = mbr.extent(0).max(mbr.extent(1));
    if extent <= 0.0 {
        return None;
    }
    let r_max = extent * 0.25;
    let r_min = extent * 0.25 / (1 << radii.min(16)) as f64;

    // Grid with cell size r_max: all pairs within r_max live in the 3x3
    // neighbourhood of a cell.
    let cell = r_max;
    let mut grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let key = (
            ((p.x() - mbr.lo(0)) / cell).floor() as i64,
            ((p.y() - mbr.lo(1)) / cell).floor() as i64,
        );
        grid.entry(key).or_default().push(i);
    }
    // Histogram of pair distances over geometric radius buckets.
    let mut counts = vec![0u64; radii];
    let bucket_of = |d: f64| -> Option<usize> {
        if d > r_max || d <= 0.0 {
            return None;
        }
        if d <= r_min {
            return Some(0);
        }
        let x = (d / r_min).ln() / (r_max / r_min).ln(); // in (0, 1]
        Some(((x * (radii - 1) as f64).ceil() as usize).min(radii - 1))
    };
    for (&(ix, iy), members) in &grid {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let Some(other) = grid.get(&(ix + dx, iy + dy)) else { continue };
                for &i in members {
                    for &j in other {
                        if j <= i {
                            continue;
                        }
                        if let Some(b) = bucket_of(points[i].dist(&points[j])) {
                            counts[b] += 1;
                        }
                    }
                }
            }
        }
    }
    // Cumulative counts -> C(r) at each bucket upper radius.
    let mut samples = Vec::with_capacity(radii);
    let mut cum = 0u64;
    for (b, &c) in counts.iter().enumerate() {
        cum += c;
        if cum == 0 {
            continue;
        }
        let r = if b == 0 {
            r_min
        } else {
            r_min * (r_max / r_min).powf(b as f64 / (radii - 1) as f64)
        };
        samples.push((r.ln(), (cum as f64).ln()));
    }
    if samples.len() < 2 {
        return None;
    }
    linear_fit(&samples).map(|f| f.slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::xy(rnd() * 100.0, rnd() * 100.0)).collect()
    }

    fn line_points(n: usize) -> Vec<Point<2>> {
        (0..n).map(|i| Point::xy(i as f64 / n as f64 * 100.0, 50.0)).collect()
    }

    #[test]
    fn uniform_set_has_dimension_near_two() {
        let pts = uniform_points(20_000, 9);
        let d0 = box_counting_dimension(&pts, 8).unwrap();
        assert!((1.6..=2.3).contains(&d0), "D0 = {d0}");
        let d2 = correlation_dimension(&pts, 8).unwrap();
        assert!((1.6..=2.3).contains(&d2), "D2 = {d2}");
    }

    #[test]
    fn line_set_has_dimension_near_one() {
        let pts = line_points(20_000);
        let d0 = box_counting_dimension(&pts, 8).unwrap();
        assert!((0.7..=1.3).contains(&d0), "D0 = {d0}");
        let d2 = correlation_dimension(&pts, 8).unwrap();
        assert!((0.7..=1.3).contains(&d2), "D2 = {d2}");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(box_counting_dimension(&[], 8).is_none());
        assert!(correlation_dimension(&uniform_points(5, 1), 8).is_none());
        let single = vec![Point::xy(1.0, 1.0); 100];
        assert!(box_counting_dimension(&single, 8).is_none());
    }
}
