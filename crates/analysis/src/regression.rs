//! Ordinary least squares on paired samples.

/// Result of a linear fit `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 = perfect fit).
    pub r2: f64,
}

/// Least-squares fit of `y = m·x + t`. Returns `None` for fewer than two
/// distinct x values.
pub fn linear_fit(samples: &[(f64, f64)]) -> Option<LinearFit> {
    let n = samples.len() as f64;
    if samples.len() < 2 {
        return None;
    }
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = samples.iter().map(|s| (s.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = samples.iter().map(|s| (s.1 - (slope * s.0 + intercept)).powi(2)).sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    Some(LinearFit { slope, intercept, r2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                let noise = ((i * 7919 % 13) as f64 - 6.0) / 30.0;
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }
}
