//! Cost model of Section 5: estimating the number of object accesses of an
//! AKNN query over *ideal fuzzy objects* (circles whose α-cut radius is a
//! function `R(α)`), using the fractal-dimension framework of Papadopoulos
//! & Manolopoulos (ref. \[16\] of the paper).
//!
//! * [`regression`] — least-squares line fitting in log-log space.
//! * [`fractal`] — box-counting (Hausdorff, `D₀`) and correlation (`D₂`)
//!   dimension estimators for point datasets.
//! * [`cost_model`] — Equations 6–8 and the Gaussian-disk `R(α)` profile
//!   matching the synthetic dataset generator.

#![warn(missing_docs)]

pub mod cost_model;
pub mod fractal;
pub mod regression;

pub use cost_model::{eq6_knn_radius, eq8_object_accesses, gaussian_disk_radius, CostModelParams};
pub use fractal::{box_counting_dimension, correlation_dimension};
pub use regression::linear_fit;
