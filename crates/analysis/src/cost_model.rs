//! Equations 6–8 of Section 5: expected object accesses of an AKNN query
//! over ideal fuzzy objects.

/// Inputs of the cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModelParams {
    /// Number of objects `N`.
    pub num_objects: usize,
    /// Result size `k`.
    pub k: usize,
    /// Average R-tree node capacity `C_avg = C_max · U_avg`.
    pub c_avg: f64,
    /// Correlation fractal dimension `D₂` (2 for uniform data).
    pub d2: f64,
    /// Hausdorff fractal dimension `D₀` (2 for uniform data; Eq. 8 as
    /// printed assumes the uniform case `√(C_avg/N)`, we keep `D₀`
    /// explicit).
    pub d0: f64,
}

/// Equation 6: the distance `ε` from the query centre within which `k`
/// object centres are expected, for a uniform unit-square dataset:
/// `ε = (1/√π) · √(k/(N−1))`.
///
/// Note the paper's data space is 100×100 while Eq. 6 is derived on the
/// unit square; multiply by the space side length for absolute distances.
pub fn eq6_knn_radius(k: usize, num_objects: usize) -> f64 {
    if num_objects < 2 {
        return 0.0;
    }
    (1.0 / std::f64::consts::PI.sqrt()) * (k as f64 / (num_objects as f64 - 1.0)).sqrt()
}

/// The α-cut radius `R(α)` of the ideal fuzzy object matching the
/// synthetic generator: a disk of radius `r0` whose membership is a
/// normalized Gaussian, so `R(α) = min(r0, σ·√(−2 ln α))`.
pub fn gaussian_disk_radius(alpha: f64, sigma: f64, r0: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0,1]");
    (sigma * (-2.0 * alpha.ln()).sqrt()).min(r0)
}

/// Equation 8: expected number of objects accessed by the basic AKNN
/// search at threshold α, where `radius_alpha = R(α)` is the ideal-object
/// cut radius and distances are normalized to the unit square:
///
/// ```text
/// L = (N−1)/C_avg · ( (C_avg/N)^{1/D₀} + 2·(ε − R(α)) )^{D₂}
/// ```
///
/// (Eq. 8 substitutes the range-query radius `d = d_knn(α) + R(α)` with
/// `d_knn(α) = ε − 2R(α)`.) The result is clamped to `[k, N]` — the model
/// can go below `k` for tiny ε, but the search must touch at least the
/// answers themselves.
pub fn eq8_object_accesses(p: &CostModelParams, radius_alpha: f64) -> f64 {
    let n = p.num_objects as f64;
    if p.num_objects < 2 || p.c_avg <= 0.0 {
        return p.num_objects as f64;
    }
    let eps = eq6_knn_radius(p.k, p.num_objects);
    let d = (eps - radius_alpha).max(0.0);
    let base = (p.c_avg / n).powf(1.0 / p.d0) + 2.0 * d;
    let l = (n - 1.0) / p.c_avg * base.powf(p.d2);
    l.clamp(p.k as f64, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, k: usize) -> CostModelParams {
        CostModelParams { num_objects: n, k, c_avg: 40.0, d2: 2.0, d0: 2.0 }
    }

    #[test]
    fn eq6_matches_closed_form() {
        let eps = eq6_knn_radius(20, 50_000);
        let want = (1.0 / std::f64::consts::PI.sqrt()) * (20.0f64 / 49_999.0).sqrt();
        assert!((eps - want).abs() < 1e-15);
        assert_eq!(eq6_knn_radius(5, 1), 0.0);
    }

    #[test]
    fn eq6_grows_with_k_shrinks_with_n() {
        assert!(eq6_knn_radius(50, 10_000) > eq6_knn_radius(5, 10_000));
        assert!(eq6_knn_radius(10, 1_000) > eq6_knn_radius(10, 100_000));
    }

    #[test]
    fn gaussian_radius_shrinks_with_alpha() {
        let r = |a| gaussian_disk_radius(a, 0.5, 0.5);
        assert!(r(0.3) >= r(0.5));
        assert!(r(0.5) >= r(0.9));
        assert_eq!(r(1.0), 0.0);
        // Clamped by the disk radius at tiny α.
        assert_eq!(r(1e-6), 0.5);
    }

    #[test]
    fn eq8_monotonicity_matches_section5() {
        // "more objects need to be accessed as N, k or α increases".
        // Use a small C_avg so the model is not clamped at k (in clamped
        // regimes Eq. 8 degenerates and the claim only holds weakly).
        let p = |n, k| CostModelParams { num_objects: n, k, c_avg: 1.0, d2: 2.0, d0: 2.0 };
        let r = |a| gaussian_disk_radius(a, 0.003, 0.01);
        let base = eq8_object_accesses(&p(10_000, 20), r(0.5));
        let more_k = eq8_object_accesses(&p(10_000, 50), r(0.5));
        let higher_alpha = eq8_object_accesses(&p(10_000, 20), r(0.9));
        assert!(base > 20.0, "model unexpectedly clamped: {base}");
        assert!(more_k > base, "{more_k} vs {base}");
        assert!(higher_alpha > base, "{higher_alpha} vs {base}");
        // In N the unit-square model is only weakly monotone; require
        // non-degeneracy rather than strict growth.
        let more_n = eq8_object_accesses(&p(50_000, 20), r(0.5));
        assert!(more_n >= 20.0);
    }

    #[test]
    fn eq8_clamped_to_dataset() {
        let p = params(100, 20);
        let l = eq8_object_accesses(&p, 0.0);
        assert!((20.0..=100.0).contains(&l));
    }
}
