//! Property tests for the shard layer.
//!
//! Three families, each over randomized datasets, shard counts and
//! query parameters:
//!
//! 1. **Partitioning** — every assignment strategy sends each object to
//!    exactly one shard (`< shards`), the shard contents are pairwise
//!    disjoint and their union is the input set.
//! 2. **Manifest round-trip** — a built `.fzsm` decodes back to exactly
//!    the encoded manifest (`encode ∘ decode = id`), and reopening the
//!    index agrees with the manifest's own row counts.
//! 3. **τ-pruning equivalence** — scatter-gather with the shared τ
//!    bound answers bit-identically to the unpruned per-shard reference
//!    on all four paper variants, at every generated shard count.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use fuzzy_core::{FuzzyObject, ObjectId};
use fuzzy_geom::Point;
use fuzzy_index::{
    MassClassAssign, NodeAccess, RTree, RTreeConfig, ShardAssign, ShardManifest, ShardedIndex,
    StrCenterAssign,
};
use fuzzy_query::{AknnConfig, DistBound, ShardScratch, ShardedQueryEngine};
use fuzzy_store::{MemStore, ObjectStore};
use proptest::prelude::*;

fn blob(id: u64, salt: u64) -> FuzzyObject<2> {
    let mut state = (id ^ salt.rotate_left(23)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let (cx, cy) = ((id % 9) as f64 * 3.0 + rnd(), (id / 9) as f64 * 3.0 + rnd());
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..12 {
        let r = rnd();
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        mus.push((((1.0 - r) * 10.0).round() / 10.0).clamp(0.1, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Partition completeness and disjointness, for both strategies at
    /// every shard count — including counts above the object count
    /// (the builder clamps; the assignment must still cover everything).
    #[test]
    fn strategies_partition_the_dataset(
        salt in any::<u64>(),
        n in 1u64..80,
        shards in 1usize..12,
    ) {
        let store = MemStore::from_objects((0..n).map(|i| blob(i, salt))).unwrap();
        let summaries = store.summaries().to_vec();
        for strategy in [&StrCenterAssign as &dyn ShardAssign<2>, &MassClassAssign] {
            let assign = strategy.assign(&summaries, shards);
            prop_assert_eq!(assign.len(), summaries.len(), "one shard per object");
            prop_assert!(
                assign.iter().all(|&s| (s as usize) < shards),
                "assignment out of range for {}", strategy.name()
            );

            // Build the per-shard trees and check their entry sets are a
            // disjoint cover of the input ids.
            let mut parts: Vec<Vec<_>> = vec![Vec::new(); shards];
            for (s, shard) in summaries.iter().zip(&assign) {
                parts[*shard as usize].push(*s);
            }
            let mut seen = BTreeSet::new();
            for part in &parts {
                let tree = RTree::bulk_load(
                    part.clone(),
                    RTreeConfig { max_entries: 8, min_fill: 0.4 },
                );
                prop_assert_eq!(NodeAccess::len(&tree), part.len());
                for e in tree.iter_entries() {
                    prop_assert!(seen.insert(e.id.0), "{} appears in two shards", e.id);
                }
            }
            let want: BTreeSet<u64> = (0..n).collect();
            prop_assert_eq!(&seen, &want, "union of shards must be the dataset");
        }
    }

    /// `.fzsm` round trip: build → load gives a manifest that encodes/
    /// decodes to itself, whose rows agree with the reopened shards.
    #[test]
    fn manifest_round_trips_through_disk(
        salt in any::<u64>(),
        n in 1u64..60,
        shards in 1usize..7,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let manifest_path = std::env::temp_dir()
            .join(format!("fz-shardprops-{}-{case}.fzsm", std::process::id()));

        let store = MemStore::from_objects((0..n).map(|i| blob(i, salt))).unwrap();
        let built = ShardedIndex::<2>::build(
            store.summaries().to_vec(),
            shards,
            &StrCenterAssign,
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
            &manifest_path,
            4096,
        ).unwrap();

        let loaded = ShardManifest::<2>::load(&manifest_path).unwrap();
        prop_assert_eq!(&loaded, built.manifest());
        let redecoded = ShardManifest::<2>::decode(&loaded.encode()).unwrap();
        prop_assert_eq!(&redecoded, &loaded);

        // Rows must agree with the reopened index: per-shard object
        // counts sum to the dataset, shard id = row index.
        prop_assert_eq!(loaded.object_count(), n);
        prop_assert_eq!(loaded.shards.len(), built.shard_count());
        for (row, shard) in loaded.shards.iter().zip(built.shards()) {
            prop_assert_eq!(row.objects as usize, NodeAccess::len(shard.as_ref()));
        }

        let mut shard_paths = Vec::new();
        for i in 0..built.shard_count() {
            shard_paths.push(built.shard_path(i));
        }
        drop(built);
        for p in shard_paths {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(&manifest_path).ok();
    }

    /// The shared τ bound is an optimization, never an answer change:
    /// pruned and unpruned scatter-gather agree bit for bit on every
    /// paper variant, shard count and parameter draw.
    #[test]
    fn tau_pruning_never_changes_answers(
        salt in any::<u64>(),
        n in 2u64..70,
        shards in 1usize..7,
        qid_seed in any::<u64>(),
        k in 1usize..10,
        alpha in 0.1..0.98f64,
    ) {
        let store = MemStore::from_objects((0..n).map(|i| blob(i, salt))).unwrap();
        let summaries = store.summaries().to_vec();
        let assign = ShardAssign::<2>::assign(&StrCenterAssign, &summaries, shards);
        let mut parts: Vec<Vec<_>> = vec![Vec::new(); shards];
        for (s, shard) in summaries.iter().zip(&assign) {
            parts[*shard as usize].push(*s);
        }
        let forest: Vec<RTree<2>> = parts
            .into_iter()
            .map(|p| RTree::bulk_load(p, RTreeConfig { max_entries: 8, min_fill: 0.4 }))
            .collect();
        let engine = ShardedQueryEngine::new(&forest, &store);
        let mut scratch = ShardScratch::new();

        let q = store.probe(ObjectId(qid_seed % n)).unwrap().as_ref().clone();
        for cfg in AknnConfig::paper_variants() {
            let pruned = engine.aknn_with_scratch(&q, k, alpha, &cfg, &mut scratch).unwrap();
            let plain =
                engine.aknn_unpruned_with_scratch(&q, k, alpha, &cfg, &mut scratch).unwrap();
            prop_assert_eq!(
                pruned.neighbors.len(),
                k.min(n as usize),
                "cardinality ({})", cfg.variant_name()
            );
            prop_assert_eq!(
                pruned.neighbors.len(),
                plain.neighbors.len(),
                "pruned/unpruned cardinality ({})", cfg.variant_name()
            );
            for (a, b) in pruned.neighbors.iter().zip(&plain.neighbors) {
                prop_assert_eq!(a.id, b.id, "{}", cfg.variant_name());
                let (DistBound::Exact(da), DistBound::Exact(db)) = (a.dist, b.dist) else {
                    panic!("scatter-gather answers must be exact ({})", cfg.variant_name());
                };
                prop_assert_eq!(
                    da.to_bits(),
                    db.to_bits(),
                    "τ pruning changed a distance ({})", cfg.variant_name()
                );
            }
            // Pruning must not do *more* object work than the reference.
            prop_assert!(
                pruned.stats.object_accesses <= plain.stats.object_accesses,
                "τ pruning increased probes ({}): {} > {}",
                cfg.variant_name(), pruned.stats.object_accesses, plain.stats.object_accesses
            );
        }
    }
}
