//! Cross-algorithm correctness: every AKNN variant must agree with a
//! linear-scan oracle, and every RKNN algorithm must agree with the naive
//! (probe-everything) reference, across random datasets, ks, thresholds
//! and ranges.

use fuzzy_core::distance::alpha_distance_brute;
use fuzzy_core::{FuzzyObject, ObjectId, Threshold};
use fuzzy_geom::Point;
use fuzzy_index::{RTree, RTreeConfig};
use fuzzy_query::{AknnConfig, QueryEngine, RknnAlgorithm};
use fuzzy_store::{MemStore, ObjectStore};

struct Rng(u64);
impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A blob object: kernel at the centre, quantized membership decaying with
/// radius. Quantization (20 levels) makes critical-probability structure
/// non-trivial without creating distance ties.
fn blob(id: u64, cx: f64, cy: f64, radius: f64, n: usize, rng: &mut Rng) -> FuzzyObject<2> {
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..n {
        let r = rng.next_f64() * radius;
        let theta = rng.next_f64() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * theta.cos(), cy + r * theta.sin()));
        let mu = (((1.0 - r / (radius * 1.1)) * 20.0).round() / 20.0).clamp(0.05, 1.0);
        mus.push(mu);
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

fn dataset(seed: u64, count: usize, pts_per_obj: usize) -> (MemStore<2>, FuzzyObject<2>) {
    let mut rng = Rng(seed | 1);
    let mut objects = Vec::with_capacity(count);
    for i in 0..count {
        let cx = rng.next_f64() * 40.0;
        let cy = rng.next_f64() * 40.0;
        objects.push(blob(i as u64, cx, cy, 1.0, pts_per_obj, &mut rng));
    }
    let q = blob(u64::MAX, 20.0, 20.0, 1.0, pts_per_obj, &mut rng);
    (MemStore::from_objects(objects).unwrap(), q)
}

/// Linear-scan oracle: exact α-distances of every object, ascending.
fn oracle_distances(store: &MemStore<2>, q: &FuzzyObject<2>, t: Threshold) -> Vec<(f64, ObjectId)> {
    let mut all: Vec<(f64, ObjectId)> = store
        .summaries()
        .iter()
        .map(|s| {
            let obj = store.probe(s.id).unwrap();
            (alpha_distance_brute(&obj, q, t).unwrap(), s.id)
        })
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all
}

#[test]
fn aknn_variants_match_linear_scan() {
    for seed in [3u64, 17, 91] {
        let (store, q) = dataset(seed, 120, 30);
        let tree = RTree::bulk_load(
            store.summaries().to_vec(),
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
        );
        let engine = QueryEngine::new(&tree, &store);
        for alpha in [0.1, 0.5, 0.9] {
            let t = Threshold::at(alpha);
            let oracle = oracle_distances(&store, &q, t);
            store.reset_stats();
            for k in [1usize, 7, 25] {
                let kth = oracle[k - 1].0;
                for cfg in AknnConfig::paper_variants() {
                    let res = engine.aknn(&q, k, alpha, &cfg).unwrap();
                    assert_eq!(
                        res.neighbors.len(),
                        k,
                        "seed {seed} α {alpha} k {k} {}",
                        cfg.variant_name()
                    );
                    // Every returned object must truly be within the k-th
                    // oracle distance (ties allowed), and its reported
                    // bounds must bracket the true distance.
                    for n in &res.neighbors {
                        let obj = store.probe(n.id).unwrap();
                        let d = alpha_distance_brute(&obj, &q, t).unwrap();
                        assert!(
                            d <= kth + 1e-9,
                            "seed {seed} α {alpha} k {k} {}: {} has d {d} > kth {kth}",
                            cfg.variant_name(),
                            n.id
                        );
                        assert!(
                            n.dist.lo() <= d + 1e-9 && d <= n.dist.hi() + 1e-9,
                            "bounds [{}, {}] do not bracket {d}",
                            n.dist.lo(),
                            n.dist.hi()
                        );
                    }
                    // No duplicates.
                    let mut ids = res.ids();
                    ids.sort();
                    ids.dedup();
                    assert_eq!(ids.len(), k);
                }
            }
        }
    }
}

#[test]
fn optimized_variants_access_fewer_or_equal_objects() {
    let (store, q) = dataset(77, 300, 40);
    let tree = RTree::bulk_load(
        store.summaries().to_vec(),
        RTreeConfig { max_entries: 16, min_fill: 0.4 },
    );
    let engine = QueryEngine::new(&tree, &store);
    let mut accesses = Vec::new();
    for cfg in AknnConfig::paper_variants() {
        store.reset_stats();
        let res = engine.aknn(&q, 10, 0.7, &cfg).unwrap();
        accesses.push((cfg.variant_name(), res.stats.object_accesses));
    }
    // LB must not access more than Basic; the full stack must be the best
    // or tied. (Strict orderings are workload-dependent; the invariant the
    // paper relies on is monotone improvement.)
    let basic = accesses[0].1;
    let lb = accesses[1].1;
    let full = accesses[3].1;
    assert!(lb <= basic, "{accesses:?}");
    assert!(full <= lb, "{accesses:?}");
}

#[test]
fn aknn_at_strict_threshold_matches_oracle() {
    let (store, q) = dataset(5, 80, 25);
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    // Strict threshold right at a quantization level exercises the α+ε cut.
    let t = Threshold::above(0.5);
    let oracle = oracle_distances(&store, &q, t);
    let res = engine.aknn_at(&q, 5, t, &AknnConfig::lb_lp_ub()).unwrap();
    let kth = oracle[4].0;
    for n in &res.neighbors {
        let obj = store.probe(n.id).unwrap();
        let d = alpha_distance_brute(&obj, &q, t).unwrap();
        assert!(d <= kth + 1e-9);
    }
}

#[test]
fn rknn_algorithms_agree_with_naive() {
    for seed in [11u64, 23] {
        let (store, q) = dataset(seed, 60, 20);
        let tree = RTree::bulk_load(
            store.summaries().to_vec(),
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
        );
        let engine = QueryEngine::new(&tree, &store);
        for (k, lo, hi) in [(3usize, 0.3, 0.6), (5, 0.1, 0.9), (2, 0.5, 0.5), (4, 0.7, 1.0)] {
            let reference =
                engine.rknn(&q, k, lo, hi, RknnAlgorithm::Naive, &AknnConfig::lb_lp_ub()).unwrap();
            for algo in RknnAlgorithm::paper_variants() {
                for cfg in [AknnConfig::basic(), AknnConfig::lb_lp_ub()] {
                    let res = engine.rknn(&q, k, lo, hi, algo, &cfg).unwrap();
                    assert!(
                        res.approx_eq(&reference, 1e-9),
                        "seed {seed} k {k} [{lo},{hi}] {} ({}):\n got {}\n want {}",
                        algo.name(),
                        cfg.variant_name(),
                        res.items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join("; "),
                        reference
                            .items
                            .iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>()
                            .join("; "),
                    );
                }
            }
        }
    }
}

#[test]
fn rknn_rss_accesses_far_fewer_objects_than_basic() {
    let (store, q) = dataset(31, 400, 25);
    let tree = RTree::bulk_load(
        store.summaries().to_vec(),
        RTreeConfig { max_entries: 16, min_fill: 0.4 },
    );
    let engine = QueryEngine::new(&tree, &store);
    let cfg = AknnConfig::lb_lp_ub();
    let basic = engine.rknn(&q, 10, 0.4, 0.6, RknnAlgorithm::Basic, &cfg).unwrap();
    let rss = engine.rknn(&q, 10, 0.4, 0.6, RknnAlgorithm::Rss, &cfg).unwrap();
    let icr = engine.rknn(&q, 10, 0.4, 0.6, RknnAlgorithm::RssIcr, &cfg).unwrap();
    assert!(basic.approx_eq(&rss, 1e-9));
    assert!(
        rss.stats.object_accesses < basic.stats.object_accesses,
        "rss {} vs basic {}",
        rss.stats.object_accesses,
        basic.stats.object_accesses
    );
    // RSS and RSS-ICR probe the same candidate set.
    assert_eq!(rss.stats.object_accesses, icr.stats.object_accesses);
    // ICR must not check more refinement steps than RSS.
    assert!(icr.stats.profile_computations <= rss.stats.profile_computations);
}

#[test]
fn rknn_ranges_partition_correctly_at_every_alpha() {
    // At every probability in the range, exactly k objects must qualify
    // (no ties in this dataset), and membership must match a direct AKNN.
    let (store, q) = dataset(47, 50, 20);
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let k = 4;
    let res = engine.rknn(&q, k, 0.2, 0.8, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub()).unwrap();
    for alpha in [0.2, 0.25, 0.33, 0.41, 0.5, 0.62, 0.75, 0.8] {
        let qualifying: Vec<ObjectId> =
            res.items.iter().filter(|i| i.range.contains(alpha)).map(|i| i.id).collect();
        assert_eq!(qualifying.len(), k, "α = {alpha}");
        let t = Threshold::at(alpha);
        let oracle = oracle_distances(&store, &q, t);
        let kth = oracle[k - 1].0;
        for id in qualifying {
            let obj = store.probe(id).unwrap();
            let d = alpha_distance_brute(&obj, &q, t).unwrap();
            assert!(d <= kth + 1e-9, "α {alpha}: {id} not truly in {k}NN");
        }
    }
}

#[test]
fn invalid_parameters_are_rejected() {
    let (store, q) = dataset(1, 10, 10);
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let cfg = AknnConfig::lb_lp_ub();
    assert!(engine.aknn(&q, 0, 0.5, &cfg).is_err());
    assert!(engine.aknn(&q, 3, 0.0, &cfg).is_err());
    assert!(engine.aknn(&q, 3, 1.5, &cfg).is_err());
    assert!(engine.rknn(&q, 3, 0.6, 0.4, RknnAlgorithm::Rss, &cfg).is_err());
    assert!(engine.rknn(&q, 3, -0.1, 0.4, RknnAlgorithm::Rss, &cfg).is_err());
}

#[test]
fn k_exceeding_dataset_returns_all_objects() {
    let (store, q) = dataset(9, 12, 15);
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let res = engine.aknn(&q, 50, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
    assert_eq!(res.neighbors.len(), 12);
    let rknn =
        engine.rknn(&q, 50, 0.3, 0.7, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub()).unwrap();
    assert_eq!(rknn.items.len(), 12);
}
