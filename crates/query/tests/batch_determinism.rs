//! Executor determinism: the same workload must produce byte-identical
//! answers whether it runs on 1, 2 or 8 threads — and, since PR 3,
//! whether the index is the in-memory `RTree` or the disk-resident
//! `PagedRTree`. The summed *logical* cost accounting of a concurrent run
//! must equal the sequential run exactly (the disk/cache split of a
//! shared buffer pool legitimately depends on interleaving and is checked
//! separately).

use fuzzy_core::{FuzzyObject, ObjectId};
use fuzzy_geom::Point;
use fuzzy_index::{NodeAccess, PagedRTree, RTree, RTreeConfig};
use fuzzy_query::{
    AknnConfig, BatchExecutor, BatchOutcome, BatchRequest, BatchResponse, DistBound, QueryStats,
    RknnAlgorithm, SharedQueryEngine,
};
use fuzzy_store::{FileStoreWriter, MemStore, ObjectStore};

/// A deterministic pseudo-random fuzzy object (xorshift, no external RNG).
fn blob(id: u64, cx: f64, cy: f64) -> FuzzyObject<2> {
    let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..20 {
        let r = rnd();
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        mus.push((((1.0 - r) * 10.0).round() / 10.0).clamp(0.1, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

fn objects(n: u64) -> impl Iterator<Item = FuzzyObject<2>> {
    (0..n).map(|i| blob(i, (i % 12) as f64 * 3.0, (i / 12) as f64 * 3.0))
}

/// A mixed workload touching every query type, several variants and both
/// valid and invalid parameters (error slots must be stable too).
fn workload<S: ObjectStore<2>>(store: &S, n: u64) -> Vec<BatchRequest<2>> {
    let mut requests = Vec::new();
    for i in 0..n {
        let q = store.probe(ObjectId(i)).unwrap().as_ref().clone();
        match i % 5 {
            0 => requests.push(BatchRequest::aknn(q, 5, 0.5, AknnConfig::lb_lp_ub())),
            1 => requests.push(BatchRequest::aknn(q, 3, 0.8, AknnConfig::basic())),
            2 => requests.push(BatchRequest::rknn(
                q,
                3,
                (0.3, 0.7),
                RknnAlgorithm::RssIcr,
                AknnConfig::lb_lp_ub(),
            )),
            3 => requests.push(BatchRequest::rknn(
                q,
                2,
                (0.2, 0.9),
                RknnAlgorithm::Rss,
                AknnConfig::lb_lp(),
            )),
            // Deliberately invalid: α out of range; the error must land in
            // this exact slot on every run.
            _ => requests.push(BatchRequest::aknn(q, 4, 1.5, AknnConfig::lb_lp_ub())),
        }
    }
    requests
}

/// Canonical byte representation of an outcome's answers: ids and the raw
/// IEEE-754 bits of every distance/endpoint, excluding wall-clock times.
/// Two outcomes with equal fingerprints are byte-identical result sets.
fn fingerprint(outcome: &BatchOutcome) -> String {
    let mut out = String::new();
    for (i, res) in outcome.responses.iter().enumerate() {
        out.push_str(&format!("[{i}] "));
        match res {
            Err(e) => out.push_str(&format!("err {e}\n")),
            Ok(BatchResponse::Aknn(r)) => {
                for n in &r.neighbors {
                    let bits = match n.dist {
                        DistBound::Exact(d) => format!("={:016x}", d.to_bits()),
                        DistBound::Bounded { lo, hi } => {
                            format!("[{:016x},{:016x}]", lo.to_bits(), hi.to_bits())
                        }
                    };
                    out.push_str(&format!("{}{bits} ", n.id));
                }
                out.push('\n');
            }
            Ok(BatchResponse::Rknn(r)) => {
                for item in &r.items {
                    out.push_str(&format!("{} ", item.id));
                    for iv in item.range.intervals() {
                        out.push_str(&format!(
                            "({}{:016x},{:016x}{}) ",
                            if iv.lo_closed { "[" } else { "(" },
                            iv.lo.to_bits(),
                            iv.hi.to_bits(),
                            if iv.hi_closed { "]" } else { ")" },
                        ));
                    }
                }
                out.push('\n');
            }
        }
    }
    out
}

/// The count fields of a stats aggregate (everything except wall-clock,
/// which legitimately differs between runs).
fn counts(s: &QueryStats) -> [u64; 7] {
    [
        s.object_accesses,
        s.node_accesses,
        s.distance_evals,
        s.profile_computations,
        s.bound_evals,
        s.aknn_calls,
        s.candidates,
    ]
}

fn assert_deterministic<A, S>(engine: &SharedQueryEngine<A, S, 2>, n: u64) -> String
where
    A: NodeAccess<2> + Sync,
    S: ObjectStore<2> + Sync,
{
    let requests = workload(engine.store(), n);
    let sequential = BatchExecutor::sequential().run_shared(engine, &requests);
    let seq_print = fingerprint(&sequential);
    let seq_counts = counts(&sequential.total_stats());
    assert!(sequential.error_count() > 0, "workload must exercise error slots");

    for threads in [2usize, 8] {
        let concurrent = BatchExecutor::new(threads).run_shared(engine, &requests);
        assert_eq!(concurrent.per_thread.len(), threads);
        assert_eq!(
            fingerprint(&concurrent),
            seq_print,
            "{threads}-thread run diverged from sequential"
        );
        assert_eq!(
            counts(&concurrent.total_stats()),
            seq_counts,
            "{threads}-thread stats sum diverged from sequential"
        );
        // Per-thread reports are a lossless partition of the batch.
        let executed: usize = concurrent.per_thread.iter().map(|t| t.executed).sum();
        assert_eq!(executed, requests.len());
        // The disk/cache split may vary with interleaving but can never
        // exceed the logical access count.
        let total = concurrent.total_stats();
        assert!(total.node_disk_reads <= total.node_accesses);
    }
    seq_print
}

#[test]
fn mem_store_batch_is_deterministic_across_thread_counts() {
    let store = MemStore::from_objects(objects(60)).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    assert_deterministic(&SharedQueryEngine::from_parts(tree, store), 60);
}

#[test]
fn file_store_batch_is_deterministic_across_thread_counts() {
    let path =
        std::env::temp_dir().join(format!("fuzzy-batch-determinism-{}.fzkn", std::process::id()));
    let mut writer = FileStoreWriter::<2>::create(&path).unwrap();
    for obj in objects(45) {
        writer.append(&obj).unwrap();
    }
    let store = writer.finish().unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    assert_deterministic(&SharedQueryEngine::from_parts(tree, store), 45);
    std::fs::remove_file(&path).ok();
}

/// The fully disk-resident configuration — `PagedRTree` over `FileStore` —
/// must answer byte-identically to the fully in-memory one, at every
/// thread count. This is the ISSUE 3 acceptance bar: same workload, four
/// backend/thread combinations, one fingerprint.
#[test]
fn paged_tree_matches_in_memory_backends_across_thread_counts() {
    let base = std::env::temp_dir();
    let store_path = base.join(format!("fuzzy-paged-determinism-{}.fzkn", std::process::id()));
    let index_path = base.join(format!("fuzzy-paged-determinism-{}.fzpt", std::process::id()));
    let mut writer = FileStoreWriter::<2>::create(&store_path).unwrap();
    for obj in objects(45) {
        writer.append(&obj).unwrap();
    }
    let store = writer.finish().unwrap();
    let config = RTreeConfig { max_entries: 8, min_fill: 0.4 };

    // In-memory reference: MemStore + RTree.
    let mem_store = MemStore::from_objects(objects(45)).unwrap();
    let mem_tree = RTree::bulk_load(mem_store.summaries().to_vec(), config);
    let mem_print = assert_deterministic(&SharedQueryEngine::from_parts(mem_tree, mem_store), 45);

    // Disk-resident: PagedRTree (buffer pool of 4 pages, so eviction is
    // actually exercised) + FileStore.
    let paged =
        PagedRTree::bulk_write(store.summaries().to_vec(), config, &index_path, 4096).unwrap();
    let paged: PagedRTree<2> = {
        drop(paged); // reopen in a fresh handle, tiny cache
        PagedRTree::open_with_cache(&index_path, 4).unwrap()
    };
    let engine = SharedQueryEngine::from_parts(paged, store);
    let paged_print = assert_deterministic(&engine, 45);
    assert_eq!(paged_print, mem_print, "disk-resident answers diverged from in-memory");

    // The paged run performed real I/O: a cold sequential pass must report
    // disk reads, and they must never exceed the logical accesses.
    engine.tree().clear_cache();
    let requests = workload(engine.store(), 45);
    let cold = BatchExecutor::sequential().run_shared(&engine, &requests);
    let total = cold.total_stats();
    assert!(total.node_disk_reads > 0, "cold buffer pool must read pages");
    assert!(total.node_disk_reads <= total.node_accesses);

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&index_path).ok();
}

#[test]
fn batch_stats_match_individual_queries() {
    // The batch is bookkeeping only: each response's stats must equal the
    // stats of the same query run alone (modulo wall-clock).
    let store = MemStore::from_objects(objects(30)).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = SharedQueryEngine::from_parts(tree, store);
    let requests = workload(engine.store(), 30);
    let outcome = BatchExecutor::new(4).run_shared(&engine, &requests);

    for (req, res) in requests.iter().zip(&outcome.responses) {
        let solo = match req {
            BatchRequest::Aknn { query, k, alpha, cfg } => {
                engine.aknn(query, *k, *alpha, cfg).map(|r| r.stats)
            }
            BatchRequest::Rknn { query, k, alpha_start, alpha_end, algo, cfg } => {
                engine.rknn(query, *k, *alpha_start, *alpha_end, *algo, cfg).map(|r| r.stats)
            }
        };
        match (solo, res) {
            (Ok(solo), Ok(batched)) => assert_eq!(counts(&solo), counts(batched.stats())),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("solo/batch disagree on success: {a:?} vs {b:?}"),
        }
    }
}
