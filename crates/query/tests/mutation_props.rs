//! Property test: randomized interleaved insert/delete/update workloads.
//!
//! For every generated workload, both dynamic backends (in-memory `RTree`
//! and `PagedRTree` + delta overlay) must (a) keep every `validate.rs`
//! structural invariant after *each* mutation (checked on the in-memory
//! tree, the only backend with introspectable structure), (b) agree with
//! each other on the live set, and (c) answer AKNN and RKNN queries
//! exactly like linear-scan oracles over the live set.

use fuzzy_core::distance::alpha_distance;
use fuzzy_core::{DistanceProfile, FuzzyObject, ObjectId, ObjectSummary, Threshold};
use fuzzy_geom::Point;
use fuzzy_index::{MutableIndex, NodeAccess, OverlayRTree, PagedRTree, RTree, RTreeConfig};
use fuzzy_query::sweep::{exact_sweep, ProfiledCandidate};
use fuzzy_query::{AknnConfig, DistBound, RknnAlgorithm, SharedQueryEngine};
use fuzzy_store::{MemStore, ObjectStore};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TOTAL: u64 = 50;
const SEEDED: u64 = 28;

fn blob(id: u64, salt: u64) -> FuzzyObject<2> {
    let mut state = (id ^ salt.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let (cx, cy) = ((id % 8) as f64 * 3.0 + rnd(), (id / 8) as f64 * 3.0 + rnd());
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..10 {
        let r = rnd();
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        mus.push((((1.0 - r) * 10.0).round() / 10.0).clamp(0.1, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

fn aknn_oracle<S: ObjectStore<2>>(
    store: &S,
    live: &BTreeSet<u64>,
    q: &FuzzyObject<2>,
    alpha: f64,
) -> Vec<(u64, u64)> {
    let t = Threshold::at(alpha);
    let mut all: Vec<(u64, u64)> = live
        .iter()
        .map(|&id| {
            let obj = store.probe(ObjectId(id)).unwrap();
            (alpha_distance(&obj, q, t).unwrap().to_bits(), id)
        })
        .collect();
    all.sort_by(|a, b| f64::from_bits(a.0).total_cmp(&f64::from_bits(b.0)).then(a.1.cmp(&b.1)));
    all
}

fn check_backend<A: NodeAccess<2>, S: ObjectStore<2>>(
    label: &str,
    engine: &SharedQueryEngine<A, S, 2>,
    live: &BTreeSet<u64>,
    q: &FuzzyObject<2>,
    k: usize,
    alpha: f64,
    range: (f64, f64),
) {
    // AKNN vs linear scan (basic config: every distance exact).
    let res = engine.aknn(q, k, alpha, &AknnConfig::basic()).unwrap();
    let want = aknn_oracle(engine.store(), live, q, alpha);
    assert_eq!(res.neighbors.len(), k.min(live.len()), "{label}: cardinality");
    for (rank, n) in res.neighbors.iter().enumerate() {
        assert_eq!(n.id.0, want[rank].1, "{label}: rank {rank} id");
        match n.dist {
            DistBound::Exact(d) => {
                assert_eq!(d.to_bits(), want[rank].0, "{label}: rank {rank} distance")
            }
            DistBound::Bounded { .. } => panic!("{label}: basic config must probe exactly"),
        }
    }

    // RKNN vs the exact profile sweep over the live set.
    let res = engine.rknn(q, k, range.0, range.1, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub());
    let res = res.unwrap();
    let profiles: Vec<(ObjectId, DistanceProfile)> = live
        .iter()
        .map(|&id| {
            let obj = engine.store().probe(ObjectId(id)).unwrap();
            (ObjectId(id), DistanceProfile::compute(&obj, q))
        })
        .collect();
    let cands: Vec<ProfiledCandidate<'_>> =
        profiles.iter().map(|(id, p)| ProfiledCandidate { id: *id, profile: p }).collect();
    let mut want = exact_sweep(&cands, k, range.0, range.1);
    want.sort_by_key(|item| item.id);
    let mut got = res.items;
    got.sort_by_key(|item| item.id);
    assert_eq!(got.len(), want.len(), "{label}: RKNN cardinality");
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.id, w.id, "{label}");
        assert!(
            g.range.approx_eq(&w.range, 1e-9),
            "{label}: {} got {} want {}",
            g.id,
            g.range,
            w.range
        );
    }
}

static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    // Each case builds stores, an index file and replays a workload on
    // two backends — keep the count moderate (PROPTEST_CASES overrides).
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn randomized_interleaved_mutations_stay_correct(
        salt in any::<u64>(),
        op_seed in any::<u64>(),
        n_ops in 24usize..72,
        k in 1usize..9,
        alpha in 0.15..0.95f64,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let index_path = std::env::temp_dir()
            .join(format!("fz-mutprops-{}-{case}.fzpt", std::process::id()));

        let store =
            Arc::new(MemStore::from_objects((0..TOTAL).map(|i| blob(i, salt))).unwrap());
        let summaries = store.summaries().to_vec();
        let seeded: Vec<ObjectSummary<2>> = summaries[..SEEDED as usize].to_vec();
        let config = RTreeConfig { max_entries: 8, min_fill: 0.4 };

        let mut mem = RTree::bulk_load(seeded.clone(), config);
        let base = Arc::new(PagedRTree::bulk_write(seeded, config, &index_path, 4096).unwrap());
        let mut overlay = OverlayRTree::new(base).unwrap();

        let mut live: BTreeSet<u64> = (0..SEEDED).collect();
        let mut pending: Vec<u64> = (SEEDED..TOTAL).collect();
        let mut state = op_seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..n_ops {
            match rnd() % 4 {
                0 | 1 if !pending.is_empty() => {
                    let id = pending.remove(rnd() as usize % pending.len());
                    prop_assert!(mem.insert_summary(summaries[id as usize]).unwrap());
                    prop_assert!(overlay.insert_summary(summaries[id as usize]).unwrap());
                    live.insert(id);
                }
                2 if !live.is_empty() => {
                    let victim = *live.iter().nth(rnd() as usize % live.len()).unwrap();
                    prop_assert!(mem.delete(ObjectId(victim)));
                    prop_assert!(overlay.delete(ObjectId(victim)));
                    live.remove(&victim);
                    pending.push(victim);
                }
                _ if !live.is_empty() => {
                    let id = *live.iter().nth(rnd() as usize % live.len()).unwrap();
                    prop_assert!(mem.update(summaries[id as usize]));
                    prop_assert!(overlay.update(summaries[id as usize]));
                }
                _ => {}
            }
            // (a) structural invariants hold after every mutation.
            mem.validate().unwrap_or_else(|e| panic!("step {step}: {e}"));
            prop_assert_eq!(mem.len(), live.len());
            prop_assert_eq!(NodeAccess::len(&overlay), live.len());
        }

        // (b) both backends expose the same live set.
        let mut mem_ids: Vec<u64> = mem.iter_entries().map(|e| e.id.0).collect();
        mem_ids.sort_unstable();
        let mut ov_ids: Vec<u64> =
            overlay.live_summaries().unwrap().iter().map(|e| e.id.0).collect();
        ov_ids.sort_unstable();
        let want_ids: Vec<u64> = live.iter().copied().collect();
        prop_assert_eq!(&mem_ids, &want_ids);
        prop_assert_eq!(&ov_ids, &want_ids);

        // (c) query answers match linear-scan oracles on both backends.
        if !live.is_empty() {
            let mem_engine = SharedQueryEngine::new(Arc::new(mem), Arc::clone(&store));
            let ov_engine = SharedQueryEngine::new(Arc::new(overlay), Arc::clone(&store));
            let probe_ids: Vec<u64> = live.iter().copied().collect();
            for pick in 0..3usize {
                let qid = probe_ids[(rnd() as usize) % probe_ids.len()];
                let q = store.probe(ObjectId(qid)).unwrap().as_ref().clone();
                let range = (alpha * 0.6, (alpha * 0.6 + 0.3).min(1.0));
                check_backend("mem", &mem_engine, &live, &q, k, alpha, range);
                check_backend("overlay", &ov_engine, &live, &q, k, alpha, range);
                let _ = pick;
            }
        }

        std::fs::remove_file(&index_path).ok();
    }
}
