//! Metric-search correctness and determinism.
//!
//! Three pins:
//! 1. **Graph oracle** — M-tree AKNN under [`GraphMetric`] returns exactly
//!    what the brute-force graph-distance scan returns (bitwise distances,
//!    same ids, same order) for every query/k/threshold in the matrix.
//! 2. **L2 cross-engine** — M-tree AKNN under [`L2`] returns bitwise the
//!    same neighbour *distances* as the committed exact rectangle engine
//!    (`aknn_exact`), and bitwise the same `(id, distance)` answer as the
//!    brute scan under L2. Different index, different bounds, same metric
//!    ⇒ same nearest neighbours. (Ids are compared through the brute
//!    oracle rather than the rectangle engine because the two engines
//!    break exact-distance ties differently — vertex-resident objects
//!    make 0-distance ties common — and tie order between *different
//!    candidates at the same distance* is not part of the contract.)
//! 3. **Determinism** — building the M-tree twice and searching twice
//!    fingerprints identically, and a save/load round trip answers
//!    bitwise-identically to the in-memory build.

use fuzzy_core::metric::{GraphMetric, Metric, L2};
use fuzzy_core::{FuzzyObject, Threshold};
use fuzzy_datagen::RoadConfig;
use fuzzy_index::mtree::{MTree, MTreeConfig};
use fuzzy_index::{RTree, RTreeConfig};
use fuzzy_query::{metric_aknn, metric_aknn_brute, AknnConfig, QueryEngine};
use fuzzy_store::{MemStore, ObjectStore};
use std::sync::Arc;

fn road_fixture() -> (RoadConfig, Arc<fuzzy_core::RoadNetwork<2>>, MemStore<2>) {
    let cfg = RoadConfig {
        vertices: 150,
        extra_edges: 80,
        objects: 120,
        points_per_object: 10,
        span: 100.0,
        seed: 77,
    };
    let net = Arc::new(cfg.network());
    let store = MemStore::from_objects(cfg.objects(&net)).unwrap();
    (cfg, net, store)
}

/// IEEE-754-level fingerprint of an answer list.
fn fingerprint(res: &fuzzy_query::AknnResult) -> Vec<(u64, u64)> {
    res.neighbors.iter().map(|n| (n.id.0, n.dist.hi().to_bits())).collect()
}

#[test]
fn graph_mtree_matches_brute_oracle() {
    let (cfg, net, store) = road_fixture();
    let metric = GraphMetric::new(net.clone());
    let objects: Vec<FuzzyObject<2>> =
        store.ids().iter().map(|&id| store.probe(id).unwrap().as_ref().clone()).collect();
    let tree = MTree::build(&metric, &objects, MTreeConfig::default());
    assert!(tree.validate(&metric).is_ok());
    for query_seed in [1u64, 2, 5, 11] {
        let q = cfg.query_object(&net, query_seed);
        for k in [1usize, 4, 10] {
            for alpha in [0.3, 0.5, 1.0] {
                let t = Threshold::at(alpha);
                let via_tree = metric_aknn(&metric, &tree, &store, &q, k, t).unwrap();
                let via_scan = metric_aknn_brute(&metric, &store, &store.ids(), &q, k, t).unwrap();
                assert_eq!(
                    fingerprint(&via_tree),
                    fingerprint(&via_scan),
                    "graph M-tree diverged from oracle at seed {query_seed} k {k} α {alpha}"
                );
            }
        }
    }
}

#[test]
fn l2_mtree_matches_exact_rectangle_engine() {
    let (cfg, net, store) = road_fixture();
    let objects: Vec<FuzzyObject<2>> =
        store.ids().iter().map(|&id| store.probe(id).unwrap().as_ref().clone()).collect();
    let mtree = MTree::build(&L2, &objects, MTreeConfig::default());
    let rtree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&rtree, &store);
    for query_seed in [1u64, 3, 9] {
        let q = cfg.query_object(&net, query_seed);
        for k in [1usize, 5, 12] {
            for alpha in [0.4, 1.0] {
                let t = Threshold::at(alpha);
                let via_mtree = metric_aknn(&L2, &mtree, &store, &q, k, t).unwrap();
                let via_brute = metric_aknn_brute(&L2, &store, &store.ids(), &q, k, t).unwrap();
                let via_exact = engine.aknn_exact(&q, k, alpha, &AknnConfig::lb_lp_ub()).unwrap();
                assert_eq!(
                    fingerprint(&via_mtree),
                    fingerprint(&via_brute),
                    "L2 M-tree diverged from L2 brute scan at seed {query_seed} k {k} α {alpha}"
                );
                let dist_bits = |r: &fuzzy_query::AknnResult| -> Vec<u64> {
                    r.neighbors.iter().map(|n| n.dist.hi().to_bits()).collect()
                };
                assert_eq!(
                    dist_bits(&via_mtree),
                    dist_bits(&via_exact),
                    "L2 M-tree distances diverged from the exact rectangle engine \
                     at seed {query_seed} k {k} α {alpha}"
                );
            }
        }
    }
}

#[test]
fn mtree_build_and_search_are_deterministic() {
    let (cfg, net, store) = road_fixture();
    let metric = GraphMetric::new(net.clone());
    let objects: Vec<FuzzyObject<2>> =
        store.ids().iter().map(|&id| store.probe(id).unwrap().as_ref().clone()).collect();
    let t1 = MTree::build(&metric, &objects, MTreeConfig::default());
    let t2 = MTree::build(&metric, &objects, MTreeConfig::default());
    let q = cfg.query_object(&net, 4);
    let t = Threshold::at(0.5);
    let r1 = metric_aknn(&metric, &t1, &store, &q, 8, t).unwrap();
    let r2 = metric_aknn(&metric, &t2, &store, &q, 8, t).unwrap();
    assert_eq!(fingerprint(&r1), fingerprint(&r2));
    assert_eq!(r1.stats.node_accesses, r2.stats.node_accesses);
    assert_eq!(r1.stats.object_accesses, r2.stats.object_accesses);
    assert_eq!(r1.stats.distance_evals, r2.stats.distance_evals);

    // Save/load round trip answers identically, with identical costs.
    let dir = std::env::temp_dir().join("metric_search_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("road.fzmt");
    t1.save(&path).unwrap();
    let loaded = MTree::<2>::load(&path, &metric).unwrap();
    let r3 = metric_aknn(&metric, &loaded, &store, &q, 8, t).unwrap();
    assert_eq!(fingerprint(&r1), fingerprint(&r3));
    assert_eq!(r1.stats.node_accesses, r3.stats.node_accesses);
    std::fs::remove_file(&path).ok();

    // Opening under the wrong metric is a typed error, not a wrong answer.
    assert!(MTree::<2>::load(dir.join("missing.fzmt"), &metric).is_err());
    t1.save(&path).unwrap();
    assert!(MTree::<2>::load(&path, &L2).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn graph_distance_dominates_straight_line() {
    // Sanity for the workload itself: shortest-path distance can never be
    // shorter than L2 between the same snapped points (edge weights are
    // the L2 lengths of their segments), so the two metrics rank objects
    // differently in exactly the expected direction.
    let (_, net, _) = road_fixture();
    let metric = GraphMetric::new(net.clone());
    let coords = net.coords();
    for i in (0..coords.len()).step_by(13) {
        for j in (0..coords.len()).step_by(17) {
            let g = metric.dist(&coords[i], &coords[j]);
            let l = coords[i].dist(&coords[j]);
            assert!(
                g >= l * (1.0 - 1e-9),
                "graph distance {g} undercuts straight line {l} between {i} and {j}"
            );
        }
    }
}
