//! Cross-shard determinism: a scatter-gather forest with a shared τ
//! bound must answer **byte-identically** to the single-tree engine —
//! at every shard count (1/2/4/8), at every thread count (1/2/8), on
//! the in-memory and the disk-resident backend, and while a concurrent
//! compaction folds delta sidecars under pinned snapshots. Distances
//! are compared at the IEEE-754 bit level; "close enough" is a failure.

use std::sync::Arc;

use fuzzy_core::distance::alpha_distance_brute;
use fuzzy_core::{FuzzyObject, ObjectId, Threshold};
use fuzzy_geom::Point;
use fuzzy_index::{RTree, RTreeConfig, ShardAssign, ShardedIndex, StrCenterAssign};
use fuzzy_query::{
    alpha_distance_join, sharded_alpha_distance_join, AknnConfig, BatchExecutor, BatchOutcome,
    BatchRequest, BatchResponse, DistBound, Neighbor, QueryEngine, RknnAlgorithm, RknnItem,
    ShardScratch, ShardedDynamicEngine, ShardedQueryEngine,
};
use fuzzy_store::{FileStoreWriter, MemStore, ObjectStore};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A deterministic pseudo-random fuzzy object (xorshift, no external RNG).
fn blob(id: u64, cx: f64, cy: f64) -> FuzzyObject<2> {
    let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..20 {
        let r = rnd();
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        mus.push((((1.0 - r) * 10.0).round() / 10.0).clamp(0.1, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

fn objects(n: u64) -> impl Iterator<Item = FuzzyObject<2>> {
    (0..n).map(|i| blob(i, (i % 12) as f64 * 3.0, (i / 12) as f64 * 3.0))
}

/// A mixed AKNN/RKNN workload over every paper variant, including an
/// invalid slot — error positions must be stable across all cells too.
fn workload<S: ObjectStore<2>>(store: &S, n: u64) -> Vec<BatchRequest<2>> {
    let mut requests = Vec::new();
    for i in 0..n {
        let q = store.probe(ObjectId(i)).unwrap().as_ref().clone();
        match i % 6 {
            0 => requests.push(BatchRequest::aknn(q, 5, 0.5, AknnConfig::lb_lp_ub())),
            1 => requests.push(BatchRequest::aknn(q, 3, 0.8, AknnConfig::basic())),
            2 => requests.push(BatchRequest::aknn(q, 8, 0.3, AknnConfig::lb())),
            3 => requests.push(BatchRequest::rknn(
                q,
                3,
                (0.3, 0.7),
                RknnAlgorithm::RssIcr,
                AknnConfig::lb_lp_ub(),
            )),
            4 => requests.push(BatchRequest::rknn(
                q,
                2,
                (0.2, 0.9),
                RknnAlgorithm::Rss,
                AknnConfig::lb_lp(),
            )),
            // Deliberately invalid: α out of range.
            _ => requests.push(BatchRequest::aknn(q, 4, 1.5, AknnConfig::lb_lp_ub())),
        }
    }
    requests
}

/// One AKNN answer line: ids plus the raw IEEE-754 bits of every
/// distance (or bound endpoints).
fn aknn_line(neighbors: &[Neighbor]) -> String {
    let mut out = String::new();
    for n in neighbors {
        let bits = match n.dist {
            DistBound::Exact(d) => format!("={:016x}", d.to_bits()),
            DistBound::Bounded { lo, hi } => {
                format!("[{:016x},{:016x}]", lo.to_bits(), hi.to_bits())
            }
        };
        out.push_str(&format!("{}{bits} ", n.id));
    }
    out.push('\n');
    out
}

/// One RKNN answer line: ids plus the bits of every interval endpoint.
fn rknn_line(items: &[RknnItem]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&format!("{} ", item.id));
        for iv in item.range.intervals() {
            out.push_str(&format!(
                "({}{:016x},{:016x}{}) ",
                if iv.lo_closed { "[" } else { "(" },
                iv.lo.to_bits(),
                iv.hi.to_bits(),
                if iv.hi_closed { "]" } else { ")" },
            ));
        }
    }
    out.push('\n');
    out
}

/// Canonical byte representation of the answers. Equal fingerprints ⟺
/// byte-identical result sets.
fn fingerprint(outcome: &BatchOutcome) -> String {
    let mut out = String::new();
    for (i, res) in outcome.responses.iter().enumerate() {
        out.push_str(&format!("[{i}] "));
        match res {
            Err(e) => out.push_str(&format!("err {e}\n")),
            Ok(BatchResponse::Aknn(r)) => out.push_str(&aknn_line(&r.neighbors)),
            Ok(BatchResponse::Rknn(r)) => out.push_str(&rknn_line(&r.items)),
        }
    }
    out
}

/// The answers the forest must reproduce, computed per request on the
/// single-tree engine. AKNN slots go through [`QueryEngine::aknn_exact`]
/// — scatter-gather resolves every answer, so its canonical form is the
/// exact-distance (dist, id) order, not the lazy engine's
/// confirmation-order `Bounded` results.
fn single_tree_fingerprint<A, S>(tree: &A, store: &S, requests: &[BatchRequest<2>]) -> String
where
    A: fuzzy_index::NodeAccess<2>,
    S: ObjectStore<2>,
{
    let engine = QueryEngine::new(tree, store);
    let mut out = String::new();
    for (i, req) in requests.iter().enumerate() {
        out.push_str(&format!("[{i}] "));
        match req {
            BatchRequest::Aknn { query, k, alpha, cfg } => {
                match engine.aknn_exact(query, *k, *alpha, cfg) {
                    Ok(r) => out.push_str(&aknn_line(&r.neighbors)),
                    Err(e) => out.push_str(&format!("err {e}\n")),
                }
            }
            BatchRequest::Rknn { query, k, alpha_start, alpha_end, algo, cfg } => {
                match engine.rknn(query, *k, *alpha_start, *alpha_end, *algo, cfg) {
                    Ok(r) => out.push_str(&rknn_line(&r.items)),
                    Err(e) => out.push_str(&format!("err {e}\n")),
                }
            }
        }
    }
    out
}

/// Partition a summary set into `shards` in-memory trees with the same
/// STR strategy the on-disk builder uses.
fn mem_forest(store: &MemStore<2>, shards: usize) -> Vec<RTree<2>> {
    let summaries = store.summaries().to_vec();
    let assign = ShardAssign::<2>::assign(&StrCenterAssign, &summaries, shards);
    let mut parts: Vec<Vec<_>> = vec![Vec::new(); shards];
    for (s, shard) in summaries.into_iter().zip(&assign) {
        parts[*shard as usize].push(s);
    }
    parts
        .into_iter()
        .map(|p| RTree::bulk_load(p, RTreeConfig { max_entries: 8, min_fill: 0.4 }))
        .collect()
}

/// The core matrix: shard counts × thread counts on the mem backend,
/// every cell byte-identical to the single-tree exact answers.
#[test]
fn forest_matches_single_tree_across_shard_and_thread_counts() {
    const N: u64 = 60;
    let store = MemStore::from_objects(objects(N)).unwrap();
    let tree =
        RTree::bulk_load(store.summaries().to_vec(), RTreeConfig { max_entries: 8, min_fill: 0.4 });
    let requests = workload(&store, N);
    let reference = single_tree_fingerprint(&tree, &store, &requests);
    assert!(reference.contains("err "), "workload must exercise error slots");
    assert!(reference.contains('='), "workload must exercise success slots");

    for shards in SHARD_COUNTS {
        let forest = mem_forest(&store, shards);
        assert_eq!(forest.len(), shards);
        for threads in THREAD_COUNTS {
            let outcome = BatchExecutor::new(threads).run_sharded(&forest, &store, &requests);
            assert_eq!(
                fingerprint(&outcome),
                reference,
                "S={shards} T={threads} diverged from the single-tree answers"
            );
        }
    }
}

/// The disk-resident forest (`ShardedIndex` → paged overlay shards) must
/// agree with the in-memory single tree, byte for byte, after a real
/// build/open round trip through the `.fzsm` manifest.
#[test]
fn paged_forest_matches_single_tree() {
    const N: u64 = 48;
    let base = std::env::temp_dir();
    let pid = std::process::id();
    let store_path = base.join(format!("fuzzy-shard-det-{pid}.fzkn"));
    let mut writer = FileStoreWriter::<2>::create(&store_path).unwrap();
    for obj in objects(N) {
        writer.append(&obj).unwrap();
    }
    let store = writer.finish().unwrap();

    // Reference over the same FileStore so only the index layout varies.
    let config = RTreeConfig { max_entries: 8, min_fill: 0.4 };
    let tree = RTree::bulk_load(store.summaries().to_vec(), config);
    let requests = workload(&store, N);
    let reference = single_tree_fingerprint(&tree, &store, &requests);

    for shards in [1usize, 4] {
        let manifest = base.join(format!("fuzzy-shard-det-{pid}-s{shards}.fzsm"));
        ShardedIndex::<2>::build(
            store.summaries().to_vec(),
            shards,
            &StrCenterAssign,
            config,
            &manifest,
            4096,
        )
        .unwrap();
        let (meta, overlays) = ShardedIndex::<2>::open_overlays(&manifest, 4).unwrap();
        assert_eq!(meta.shards.len(), shards);
        for threads in THREAD_COUNTS {
            let outcome = BatchExecutor::new(threads).run_sharded(&overlays, &store, &requests);
            assert_eq!(
                fingerprint(&outcome),
                reference,
                "paged S={shards} T={threads} diverged from the in-memory single tree"
            );
        }
        for i in 0..shards {
            std::fs::remove_file(fuzzy_index::shard::resolve_shard_path(
                &manifest,
                &meta.shards[i].path,
            ))
            .ok();
        }
        std::fs::remove_file(&manifest).ok();
    }
    std::fs::remove_file(&store_path).ok();
}

/// Sharded AKNN against the two independent oracles: the single-tree
/// exact reference (bit-identical distances) and a linear scan with
/// brute-force α-distances (the k-th distance bounds every answer).
#[test]
fn sharded_aknn_matches_exact_reference_and_linear_scan() {
    const N: u64 = 70;
    let store = MemStore::from_objects(objects(N)).unwrap();
    let tree =
        RTree::bulk_load(store.summaries().to_vec(), RTreeConfig { max_entries: 8, min_fill: 0.4 });
    let engine = QueryEngine::new(&tree, &store);
    let forest = mem_forest(&store, 4);
    let sharded = ShardedQueryEngine::new(&forest, &store);
    let mut scratch = ShardScratch::new();

    for qid in [0u64, 13, 37, 59] {
        let q = store.probe(ObjectId(qid)).unwrap().as_ref().clone();
        for alpha in [0.2, 0.6, 0.9] {
            let t = Threshold::at(alpha);
            // Linear-scan oracle: every exact α-distance, ascending.
            let mut oracle: Vec<(f64, ObjectId)> = store
                .summaries()
                .iter()
                .map(|s| {
                    let obj = store.probe(s.id).unwrap();
                    (alpha_distance_brute(&obj, &q, t).unwrap(), s.id)
                })
                .collect();
            oracle.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

            for k in [1usize, 5, 12] {
                let exact = engine.aknn_exact(&q, k, alpha, &AknnConfig::lb_lp_ub()).unwrap();
                let forest_res = sharded
                    .aknn_with_scratch(&q, k, alpha, &AknnConfig::lb_lp_ub(), &mut scratch)
                    .unwrap();
                assert_eq!(forest_res.neighbors.len(), k);
                for (a, b) in exact.neighbors.iter().zip(&forest_res.neighbors) {
                    assert_eq!(a.id, b.id, "q {qid} α {alpha} k {k}");
                    let (DistBound::Exact(da), DistBound::Exact(db)) = (a.dist, b.dist) else {
                        panic!("exact reference and sharded answers must carry exact distances");
                    };
                    assert_eq!(
                        da.to_bits(),
                        db.to_bits(),
                        "q {qid} α {alpha} k {k}: sharded distance differs in the bits"
                    );
                }
                // Every sharded answer within the oracle's k-th distance.
                let kth = oracle[k - 1].0;
                for n in &forest_res.neighbors {
                    let DistBound::Exact(d) = n.dist else { unreachable!() };
                    assert!(
                        d <= kth * (1.0 + 1e-9) || d.to_bits() == kth.to_bits(),
                        "q {qid} α {alpha} k {k}: {} at {d} beyond oracle k-th {kth}",
                        n.id
                    );
                }
            }
        }
    }
}

/// The ε-join over two forests must concatenate to exactly the
/// single-tree join — shards partition each side, so pair sets are
/// disjoint and the canonical sort makes the merge order-independent.
#[test]
fn sharded_join_matches_single_tree_join() {
    let left_store = MemStore::from_objects(objects(40)).unwrap();
    let right_store = MemStore::from_objects(
        (0..40).map(|i| blob(i + 1000, (i % 9) as f64 * 3.5, (i / 9) as f64 * 3.5)),
    )
    .unwrap();
    let lt = RTree::bulk_load(left_store.summaries().to_vec(), RTreeConfig::default());
    let rt = RTree::bulk_load(right_store.summaries().to_vec(), RTreeConfig::default());
    let t = Threshold::at(0.5);
    let cfg = AknnConfig::lb_lp_ub();

    for radius in [1.5, 4.0] {
        let reference =
            alpha_distance_join(&lt, &left_store, &rt, &right_store, t, radius, &cfg).unwrap();
        for (ls, rs) in [(1usize, 2usize), (2, 4), (4, 8)] {
            let lf = mem_forest(&left_store, ls);
            let rf = mem_forest(&right_store, rs);
            let forest =
                sharded_alpha_distance_join(&lf, &left_store, &rf, &right_store, t, radius, &cfg)
                    .unwrap();
            assert_eq!(
                forest.pairs, reference.pairs,
                "join over {ls}×{rs} shards diverged at radius {radius}"
            );
        }
    }
}

/// The compact-while-querying race: readers pinned to pre-compaction
/// snapshots keep answering byte-identically while `compact_shards`
/// folds dirty delta sidecars shard-parallel underneath them — and the
/// post-compaction snapshots answer identically too.
#[test]
fn compaction_under_pinned_snapshots_is_byte_identical() {
    const N: u64 = 48;
    const INDEXED: u64 = 42;
    let base = std::env::temp_dir();
    let pid = std::process::id();
    let store_path = base.join(format!("fuzzy-shard-compact-{pid}.fzkn"));
    let mut writer = FileStoreWriter::<2>::create(&store_path).unwrap();
    for obj in objects(N) {
        writer.append(&obj).unwrap();
    }
    let store = Arc::new(writer.finish().unwrap());

    // Index only a prefix so the tail can arrive as dynamic inserts.
    let manifest = base.join(format!("fuzzy-shard-compact-{pid}.fzsm"));
    ShardedIndex::<2>::build(
        store.summaries()[..INDEXED as usize].to_vec(),
        4,
        &StrCenterAssign,
        RTreeConfig { max_entries: 8, min_fill: 0.4 },
        &manifest,
        4096,
    )
    .unwrap();
    let (meta, overlays) = ShardedIndex::<2>::open_overlays(&manifest, 8).unwrap();
    let regions = meta.shards.iter().map(|s| s.region).collect();
    let dynamic = ShardedDynamicEngine::new(overlays, regions, Arc::clone(&store));

    // Dirty several shards: insert the tail, delete a few indexed ids.
    for s in &store.summaries()[INDEXED as usize..] {
        let (_, inserted) = dynamic.insert(*s).unwrap();
        assert!(inserted);
    }
    for id in [3u64, 17, 29] {
        assert!(dynamic.delete(ObjectId(id)).unwrap().is_some());
    }

    let requests = workload(store.as_ref(), N);
    let snapshots = dynamic.snapshots();
    let baseline = {
        let outcome =
            BatchExecutor::sequential().run_sharded(&snapshots, store.as_ref(), &requests);
        fingerprint(&outcome)
    };

    // Readers hammer the pinned snapshots while the main thread compacts.
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let snapshots = &snapshots;
                let requests = &requests;
                let store = store.as_ref();
                let baseline = baseline.as_str();
                scope.spawn(move || {
                    for round in 0..4 {
                        let outcome = BatchExecutor::new(2).run_sharded(snapshots, store, requests);
                        assert_eq!(
                            fingerprint(&outcome),
                            baseline,
                            "pinned snapshot diverged mid-compaction (round {round})"
                        );
                    }
                })
            })
            .collect();

        let flags = dynamic.compact_shards(4096);
        assert!(flags.iter().all(|f| f.is_ok()), "compaction failed: {flags:?}");
        assert!(
            flags.iter().any(|f| matches!(f, Ok(true))),
            "at least one shard was dirty and must have compacted"
        );

        for r in readers {
            r.join().unwrap();
        }
    });

    // Fresh snapshots over the folded bases: same answers, clean overlays.
    let fresh = dynamic.snapshots();
    assert!(fresh.iter().all(|s| s.is_clean()), "compaction must leave overlays clean");
    let after = BatchExecutor::sequential().run_sharded(&fresh, store.as_ref(), &requests);
    assert_eq!(fingerprint(&after), baseline, "post-compaction answers diverged");

    for i in 0..dynamic.shard_count() {
        let p = fuzzy_index::shard::resolve_shard_path(&manifest, &meta.shards[i].path);
        std::fs::remove_file(fuzzy_index::delta_path_for(&p)).ok();
        std::fs::remove_file(&p).ok();
    }
    std::fs::remove_file(&manifest).ok();
    std::fs::remove_file(&store_path).ok();
}

/// The metric seam under `Metric = L2`: every explicit `*_in(&L2, ..)`
/// entry point must fingerprint **bit-identically** against its committed
/// plain counterpart — single-tree AKNN (lazy and exact), RKNN on every
/// algorithm, and the scatter-gather engine at every shard count. The
/// plain methods are documented as exact aliases of `*_in(&L2, ..)`;
/// this pins the alias claim at the IEEE-754 level so a drive-by edit to
/// the generic path cannot silently fork the two.
#[test]
fn metric_generic_l2_paths_match_committed_engine() {
    use fuzzy_core::metric::L2;

    const N: u64 = 60;
    let store = MemStore::from_objects(objects(N)).unwrap();
    let tree =
        RTree::bulk_load(store.summaries().to_vec(), RTreeConfig { max_entries: 8, min_fill: 0.4 });
    let engine = QueryEngine::new(&tree, &store);
    let cfg = AknnConfig::lb_lp_ub();

    let queries: Vec<FuzzyObject<2>> = [3u64, 17, 41]
        .iter()
        .map(|&id| store.probe(ObjectId(id)).unwrap().as_ref().clone())
        .collect();

    for q in &queries {
        for (k, alpha) in [(1usize, 0.3), (5, 0.5), (10, 0.8)] {
            let plain = engine.aknn(q, k, alpha, &cfg).unwrap();
            let seamed = engine.aknn_in(&L2, q, k, alpha, &cfg).unwrap();
            assert_eq!(aknn_line(&plain.neighbors), aknn_line(&seamed.neighbors));
            assert_eq!(plain.stats.object_accesses, seamed.stats.object_accesses);
            assert_eq!(plain.stats.node_accesses, seamed.stats.node_accesses);
            assert_eq!(plain.stats.distance_evals, seamed.stats.distance_evals);

            let plain = engine.aknn_exact(q, k, alpha, &cfg).unwrap();
            let seamed = engine.aknn_exact_in(&L2, q, k, alpha, &cfg).unwrap();
            assert_eq!(aknn_line(&plain.neighbors), aknn_line(&seamed.neighbors));
            assert_eq!(plain.stats.object_accesses, seamed.stats.object_accesses);
        }
        for algo in
            [RknnAlgorithm::Naive, RknnAlgorithm::Basic, RknnAlgorithm::Rss, RknnAlgorithm::RssIcr]
        {
            let plain = engine.rknn(q, 4, 0.3, 0.7, algo, &cfg).unwrap();
            let seamed = engine.rknn_in(&L2, q, 4, 0.3, 0.7, algo, &cfg).unwrap();
            assert_eq!(rknn_line(&plain.items), rknn_line(&seamed.items), "{}", algo.name());
            assert_eq!(plain.stats.object_accesses, seamed.stats.object_accesses);
            assert_eq!(plain.stats.candidates, seamed.stats.candidates);
        }
    }

    for shards in SHARD_COUNTS {
        let forest = mem_forest(&store, shards);
        let sharded = ShardedQueryEngine::new(&forest, &store);
        for q in &queries {
            let plain = sharded.aknn(q, 5, 0.5, &cfg).unwrap();
            let seamed = sharded.aknn_in(&L2, q, 5, 0.5, &cfg).unwrap();
            assert_eq!(
                aknn_line(&plain.neighbors),
                aknn_line(&seamed.neighbors),
                "S={shards}: sharded aknn_in(&L2) diverged"
            );
            assert_eq!(plain.stats.object_accesses, seamed.stats.object_accesses);
        }
    }
}
