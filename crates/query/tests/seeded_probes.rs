//! Property test: bound-seeded probes change no answers.
//!
//! The AKNN engine seeds every exact α-distance evaluation with the
//! entry's own upper bound and the running k-th best upper bound τ
//! (`AknnConfig::seeded_probes`, on by default). Seeding prunes work, not
//! candidates it cannot prove dominated — so on every paper variant
//! (Basic/LB/LB-LP/LB-LP-UB) the seeded and unseeded searches must return
//! the same neighbour id set, and wherever both report an exact distance
//! for the same object the values must agree bitwise. Both runs are also
//! checked against a linear-scan oracle's k-th distance.

use fuzzy_core::distance::alpha_distance_brute;
use fuzzy_core::{FuzzyObject, ObjectId, Threshold};
use fuzzy_geom::Point;
use fuzzy_index::{RTree, RTreeConfig};
use fuzzy_query::{AknnConfig, DistBound, QueryEngine};
use fuzzy_store::{MemStore, ObjectStore};
use proptest::prelude::*;
use std::collections::HashMap;

fn blob(id: u64, salt: u64, cx: f64, cy: f64) -> FuzzyObject<2> {
    let mut state = (id ^ salt.rotate_left(21)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..24 {
        let r = rnd();
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        // Continuous memberships: distance ties have measure zero, so the
        // seeded/unseeded id sets must match exactly.
        mus.push(((1.0 - r) * 0.9 + 0.05).clamp(0.01, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

fn dataset(n: u64, salt: u64) -> MemStore<2> {
    let mut state = salt | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    MemStore::from_objects((0..n).map(|i| blob(i, salt, rnd() * 25.0, rnd() * 25.0))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn seeded_search_agrees_with_unseeded_on_all_variants(
        salt in any::<u64>(),
        k in 1usize..12,
        alpha_step in 1u32..=10,
        query_seed in 0u64..50,
    ) {
        let alpha = alpha_step as f64 / 10.0;
        let store = dataset(60, salt);
        let tree = RTree::bulk_load(
            store.summaries().to_vec(),
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
        );
        let engine = QueryEngine::new(&tree, &store);
        let q = blob(1_000_000 + query_seed, salt, 12.0, 12.0);

        // Oracle k-th distance for the containment check.
        let t = Threshold::at(alpha);
        let mut oracle: Vec<f64> = store
            .summaries()
            .iter()
            .map(|s| alpha_distance_brute(&store.probe(s.id).unwrap(), &q, t).unwrap())
            .collect();
        oracle.sort_by(f64::total_cmp);
        let kth = oracle[k - 1];

        for base in AknnConfig::paper_variants() {
            prop_assert!(base.seeded_probes, "seeding must be the default");
            let seeded = engine.aknn(&q, k, alpha, &base).unwrap();
            let unseeded = engine.aknn(&q, k, alpha, &base.unseeded()).unwrap();

            let mut ids_s = seeded.ids();
            let mut ids_u = unseeded.ids();
            ids_s.sort();
            ids_u.sort();
            prop_assert_eq!(
                &ids_s, &ids_u,
                "id sets diverge under seeding ({} k={} α={})", base.variant_name(), k, alpha
            );

            // Exact distances agree bitwise where both probes happened.
            let exact = |r: &fuzzy_query::AknnResult| -> HashMap<ObjectId, u64> {
                r.neighbors
                    .iter()
                    .filter_map(|n| match n.dist {
                        DistBound::Exact(d) => Some((n.id, d.to_bits())),
                        DistBound::Bounded { .. } => None,
                    })
                    .collect()
            };
            let (es, eu) = (exact(&seeded), exact(&unseeded));
            for (id, bits) in &es {
                if let Some(other) = eu.get(id) {
                    prop_assert_eq!(bits, other, "exact distance diverges for {}", id);
                }
            }

            // Every returned neighbour genuinely sits within the oracle's
            // k-th distance (same soundness bar for both modes).
            for r in [&seeded, &unseeded] {
                for n in &r.neighbors {
                    let d = alpha_distance_brute(&store.probe(n.id).unwrap(), &q, t).unwrap();
                    prop_assert!(d <= kth + 1e-9, "{} beyond oracle k-th", n.id);
                }
            }
        }
    }
}
