//! Dynamic-update determinism: after an interleaved insert/delete/update
//! workload, the three dynamic backends — the in-memory `RTree` mutated
//! in place, the `PagedRTree` + delta overlay, and the overlay after
//! `compact` rewrote the index file — must answer AKNN/RKNN/join queries
//! **byte-identically** to each other, to a freshly bulk-loaded tree over
//! the same live set, and to linear-scan oracles; at 1, 2 and 8 executor
//! threads. This is the test the CI `mutation-determinism` job runs.
//!
//! Comparison configs avoid the lazy-probe buffer on *cross-shape*
//! checks: which neighbours get confirmed via bounds (vs probed exact)
//! legitimately depends on traversal order, hence on tree shape. The
//! `LB-LP-UB` variant is still pinned across thread counts per backend,
//! where the shape is fixed.

use fuzzy_core::distance::alpha_distance;
use fuzzy_core::{DistanceProfile, FuzzyObject, ObjectId, ObjectSummary, Threshold};
use fuzzy_geom::Point;
use fuzzy_index::{
    delta_path_for, MutableIndex, NodeAccess, OverlayRTree, PagedRTree, RTree, RTreeConfig,
};
use fuzzy_query::sweep::{exact_sweep, ProfiledCandidate};
use fuzzy_query::{
    alpha_distance_join, AknnConfig, BatchExecutor, BatchOutcome, BatchRequest, BatchResponse,
    DistBound, DynamicQueryEngine, RknnAlgorithm, SharedQueryEngine,
};
use fuzzy_store::{FileStoreWriter, ObjectStore};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Deterministic pseudo-random fuzzy object (tie-free geometry).
fn blob(id: u64) -> FuzzyObject<2> {
    let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let (cx, cy) = ((id % 11) as f64 * 4.0 + rnd(), (id / 11) as f64 * 4.0 + rnd());
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..16 {
        let r = rnd() * 1.5;
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        mus.push((((1.0 - r / 1.5) * 10.0).round() / 10.0).clamp(0.1, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

const TOTAL: u64 = 90;
const SEEDED: u64 = 60; // objects indexed before the mutation script runs

/// One deterministic interleaved mutation script: inserts of unindexed
/// store objects, deletes and updates of live ones.
enum Op {
    Insert(u64),
    Delete(u64),
    Update(u64),
}

fn script() -> Vec<Op> {
    let mut ops = Vec::new();
    let mut live: BTreeSet<u64> = (0..SEEDED).collect();
    let mut pending: Vec<u64> = (SEEDED..TOTAL).collect();
    let mut state = 0xDEADBEEFu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..70 {
        match rnd() % 4 {
            0 | 1 if !pending.is_empty() => {
                let id = pending.remove(rnd() as usize % pending.len());
                live.insert(id);
                ops.push(Op::Insert(id));
            }
            2 => {
                let victim = *live.iter().nth(rnd() as usize % live.len()).unwrap();
                live.remove(&victim);
                pending.push(victim);
                ops.push(Op::Delete(victim));
            }
            _ => {
                let id = *live.iter().nth(rnd() as usize % live.len()).unwrap();
                ops.push(Op::Update(id));
            }
        }
    }
    ops
}

/// Replay the script over any mutable backend; returns the live id set.
fn apply<A: MutableIndex<2>>(index: &mut A, summaries: &[ObjectSummary<2>]) -> BTreeSet<u64> {
    let mut live: BTreeSet<u64> = (0..SEEDED).collect();
    for op in script() {
        match op {
            Op::Insert(id) => {
                assert!(index.insert_summary(summaries[id as usize]).unwrap(), "insert {id}");
                live.insert(id);
            }
            Op::Delete(id) => {
                assert!(index.delete_id(ObjectId(id)).unwrap(), "delete {id}");
                live.remove(&id);
            }
            Op::Update(id) => {
                assert!(index.update_summary(summaries[id as usize]).unwrap(), "update {id}");
            }
        }
        assert_eq!(NodeAccess::len(index), live.len());
    }
    live
}

/// Mixed workload over shape-independent configurations (no lazy probe;
/// every AKNN answer carries exact distances in ascending order).
fn workload<S: ObjectStore<2>>(store: &S, live: &BTreeSet<u64>) -> Vec<BatchRequest<2>> {
    let mut requests = Vec::new();
    for (i, &id) in live.iter().step_by(4).enumerate() {
        let q = store.probe(ObjectId(id)).unwrap().as_ref().clone();
        match i % 4 {
            0 => requests.push(BatchRequest::aknn(q, 5, 0.5, AknnConfig::basic())),
            1 => requests.push(BatchRequest::aknn(q, 8, 0.7, AknnConfig::lb())),
            2 => requests.push(BatchRequest::rknn(
                q,
                3,
                (0.3, 0.7),
                RknnAlgorithm::RssIcr,
                AknnConfig::lb_lp_ub(),
            )),
            _ => requests.push(BatchRequest::rknn(
                q,
                2,
                (0.2, 0.9),
                RknnAlgorithm::Rss,
                AknnConfig::lb_lp(),
            )),
        }
    }
    requests
}

/// Canonical bytes of a batch outcome (ids + IEEE-754 bits, no wall
/// clock).
fn fingerprint(outcome: &BatchOutcome) -> String {
    let mut out = String::new();
    for (i, res) in outcome.responses.iter().enumerate() {
        out.push_str(&format!("[{i}] "));
        match res {
            Err(e) => out.push_str(&format!("err {e}\n")),
            Ok(BatchResponse::Aknn(r)) => {
                for n in &r.neighbors {
                    let bits = match n.dist {
                        DistBound::Exact(d) => format!("={:016x}", d.to_bits()),
                        DistBound::Bounded { lo, hi } => {
                            format!("[{:016x},{:016x}]", lo.to_bits(), hi.to_bits())
                        }
                    };
                    out.push_str(&format!("{}{bits} ", n.id));
                }
                out.push('\n');
            }
            Ok(BatchResponse::Rknn(r)) => {
                for item in &r.items {
                    out.push_str(&format!("{} ", item.id));
                    for iv in item.range.intervals() {
                        out.push_str(&format!(
                            "{}{:016x},{:016x}{} ",
                            if iv.lo_closed { "[" } else { "(" },
                            iv.lo.to_bits(),
                            iv.hi.to_bits(),
                            if iv.hi_closed { "]" } else { ")" },
                        ));
                    }
                }
                out.push('\n');
            }
        }
    }
    out
}

/// Run the workload at 1/2/8 threads; all runs must agree; returns the
/// shared fingerprint.
fn threaded_fingerprint<A, S>(engine: &SharedQueryEngine<A, S, 2>, live: &BTreeSet<u64>) -> String
where
    A: NodeAccess<2> + Sync,
    S: ObjectStore<2> + Sync,
{
    let requests = workload(engine.store(), live);
    let sequential = BatchExecutor::sequential().run_shared(engine, &requests);
    assert_eq!(sequential.error_count(), 0);
    let print = fingerprint(&sequential);
    for threads in [2usize, 8] {
        let concurrent = BatchExecutor::new(threads).run_shared(engine, &requests);
        assert_eq!(fingerprint(&concurrent), print, "{threads}-thread run diverged");
    }
    print
}

/// AKNN linear-scan oracle: exact α-distances over the live set.
fn assert_aknn_matches_oracle<A, S>(
    engine: &SharedQueryEngine<A, S, 2>,
    live: &BTreeSet<u64>,
    q: &FuzzyObject<2>,
    k: usize,
    alpha: f64,
) where
    A: NodeAccess<2>,
    S: ObjectStore<2>,
{
    let res = engine.aknn(q, k, alpha, &AknnConfig::basic()).unwrap();
    let t = Threshold::at(alpha);
    let mut want: Vec<(f64, u64)> = live
        .iter()
        .map(|&id| {
            let obj = engine.store().probe(ObjectId(id)).unwrap();
            (alpha_distance(&obj, q, t).unwrap(), id)
        })
        .collect();
    want.sort_by(|a, b| a.0.total_cmp(&b.0));
    assert_eq!(res.neighbors.len(), k.min(live.len()));
    for (rank, n) in res.neighbors.iter().enumerate() {
        assert_eq!(n.id.0, want[rank].1, "rank {rank}");
        match n.dist {
            DistBound::Exact(d) => assert_eq!(d.to_bits(), want[rank].0.to_bits(), "rank {rank}"),
            DistBound::Bounded { .. } => panic!("basic config always probes exact distances"),
        }
    }
}

/// RKNN linear-scan oracle: exact sweep over profiles of the live set.
fn assert_rknn_matches_oracle<A, S>(
    engine: &SharedQueryEngine<A, S, 2>,
    live: &BTreeSet<u64>,
    q: &FuzzyObject<2>,
    k: usize,
    range: (f64, f64),
) where
    A: NodeAccess<2>,
    S: ObjectStore<2>,
{
    let res = engine.rknn(q, k, range.0, range.1, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub());
    let res = res.unwrap();
    let profiles: Vec<(ObjectId, DistanceProfile)> = live
        .iter()
        .map(|&id| {
            let obj = engine.store().probe(ObjectId(id)).unwrap();
            (ObjectId(id), DistanceProfile::compute(&obj, q))
        })
        .collect();
    let cands: Vec<ProfiledCandidate<'_>> =
        profiles.iter().map(|(id, p)| ProfiledCandidate { id: *id, profile: p }).collect();
    let mut want = exact_sweep(&cands, k, range.0, range.1);
    want.sort_by_key(|item| item.id);
    let mut got = res.items;
    got.sort_by_key(|item| item.id);
    assert_eq!(got.len(), want.len(), "RKNN answer cardinality");
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.id, w.id);
        assert!(g.range.approx_eq(&w.range, 1e-9), "{}: {} vs oracle {}", g.id, g.range, w.range);
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fz-mutdet-{}-{name}", std::process::id()))
}

/// Self-join over one index: qualifying pairs with exact distances.
fn join_of<A: NodeAccess<2>, S: ObjectStore<2>>(tree: &A, store: &S) -> Vec<(u64, u64, u64)> {
    let res = alpha_distance_join(
        tree,
        store,
        tree,
        store,
        Threshold::at(0.5),
        2.5,
        &AknnConfig::lb_lp_ub(),
    )
    .unwrap();
    res.pairs.iter().map(|p| (p.left.0, p.right.0, p.dist.to_bits())).collect()
}

#[test]
fn interleaved_mutations_converge_across_backends_and_threads() {
    // Shared object store with every object (indexed or not).
    let store_path = tmp("store.fzkn");
    let index_path = tmp("index.fzpt");
    let mut writer = FileStoreWriter::<2>::create(&store_path).unwrap();
    for id in 0..TOTAL {
        writer.append(&blob(id)).unwrap();
    }
    let store = Arc::new(writer.finish().unwrap());
    let summaries = store.summaries().to_vec();
    let config = RTreeConfig { max_entries: 8, min_fill: 0.4 };
    let seeded: Vec<ObjectSummary<2>> = summaries[..SEEDED as usize].to_vec();

    // Backend 1: in-memory tree mutated in place, with invariant checks
    // after every mutation.
    let mut mem = RTree::bulk_load(seeded.clone(), config);
    let live = {
        let mut live: BTreeSet<u64> = (0..SEEDED).collect();
        for op in script() {
            match op {
                Op::Insert(id) => {
                    assert!(mem.insert_summary(summaries[id as usize]).unwrap());
                    live.insert(id);
                }
                Op::Delete(id) => {
                    assert!(mem.delete(ObjectId(id)));
                    live.remove(&id);
                }
                Op::Update(id) => {
                    assert!(mem.update(summaries[id as usize]));
                }
            }
            mem.validate().expect("invariants hold after every mutation");
        }
        live
    };

    // Backend 2: paged base file + delta overlay, same script.
    let base = Arc::new(PagedRTree::bulk_write(seeded, config, &index_path, 4096).unwrap());
    let mut overlay = OverlayRTree::new(base).unwrap();
    let live_overlay = apply(&mut overlay, &summaries);
    assert_eq!(live, live_overlay);

    // Reference: a freshly bulk-loaded tree over the same live set.
    let fresh_summaries: Vec<ObjectSummary<2>> =
        summaries.iter().filter(|s| live.contains(&s.id.0)).copied().collect();
    let fresh = RTree::bulk_load(fresh_summaries.clone(), config);
    fresh.validate().unwrap();

    let mem_engine = SharedQueryEngine::new(Arc::new(mem), Arc::clone(&store));
    // Clone for the engine; the original overlay is compacted at the end.
    let overlay_engine = SharedQueryEngine::new(Arc::new(overlay.clone()), Arc::clone(&store));
    let fresh_engine = SharedQueryEngine::new(Arc::new(fresh), Arc::clone(&store));

    // 1/2/8-thread fingerprints, identical across all three backends.
    let mem_print = threaded_fingerprint(&mem_engine, &live);
    let overlay_print = threaded_fingerprint(&overlay_engine, &live);
    let fresh_print = threaded_fingerprint(&fresh_engine, &live);
    assert_eq!(mem_print, fresh_print, "mutated in-memory tree diverged from fresh bulk load");
    assert_eq!(overlay_print, fresh_print, "paged overlay diverged from fresh bulk load");

    // Linear-scan oracles on every backend.
    for &qid in live.iter().take(6) {
        let q = store.probe(ObjectId(qid)).unwrap().as_ref().clone();
        assert_aknn_matches_oracle(&mem_engine, &live, &q, 7, 0.5);
        assert_aknn_matches_oracle(&overlay_engine, &live, &q, 7, 0.5);
        assert_rknn_matches_oracle(&mem_engine, &live, &q, 3, (0.3, 0.7));
        assert_rknn_matches_oracle(&overlay_engine, &live, &q, 3, (0.3, 0.7));
    }

    // Self-join over the live set: the mutated backends must produce the
    // same pair set as the fresh tree.
    let fresh_join = join_of(fresh_engine.tree(), store.as_ref());
    assert!(!fresh_join.is_empty(), "join radius too small to exercise anything");
    assert_eq!(
        join_of(mem_engine.tree(), store.as_ref()),
        fresh_join,
        "join diverged on mutated RTree"
    );
    assert_eq!(
        join_of(overlay_engine.tree(), store.as_ref()),
        fresh_join,
        "join diverged on overlay"
    );

    // Compact: rewrite the index file through the bulk loader; answers
    // must not move.
    drop(overlay_engine);
    overlay.save_delta().unwrap();
    assert!(delta_path_for(&index_path).exists());
    let compacted = overlay.compact(4096).unwrap();
    assert!(!delta_path_for(&index_path).exists(), "compact clears the sidecar");
    assert_eq!(NodeAccess::len(&compacted), live.len());
    let compacted_engine = SharedQueryEngine::new(Arc::new(compacted), Arc::clone(&store));
    let compacted_print = threaded_fingerprint(&compacted_engine, &live);
    assert_eq!(compacted_print, fresh_print, "compacted index diverged");
    assert_eq!(
        join_of(compacted_engine.tree(), store.as_ref()),
        fresh_join,
        "join diverged after compact"
    );

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&index_path).ok();
}

/// In-flight queries pinned to an epoch snapshot must be unaffected by
/// writer commits — including whole batches running while the writer
/// churns.
#[test]
fn pinned_snapshots_survive_concurrent_writes() {
    let store_path = tmp("epoch.fzkn");
    let mut writer = FileStoreWriter::<2>::create(&store_path).unwrap();
    for id in 0..TOTAL {
        writer.append(&blob(id)).unwrap();
    }
    let store = writer.finish().unwrap();
    let seeded: Vec<ObjectSummary<2>> = store.summaries()[..SEEDED as usize].to_vec();
    let live: BTreeSet<u64> = (0..SEEDED).collect();
    let tree = RTree::bulk_load(seeded, RTreeConfig { max_entries: 8, min_fill: 0.4 });
    let engine = DynamicQueryEngine::from_parts(tree, store);

    let pinned = engine.reader();
    let requests = workload(pinned.store(), &live);
    let before = fingerprint(&BatchExecutor::sequential().run_shared(&pinned, &requests));

    std::thread::scope(|scope| {
        let writer = engine.clone();
        let summaries: Vec<ObjectSummary<2>> = engine.store().summaries().to_vec();
        scope.spawn(move || {
            for op in script() {
                match op {
                    Op::Insert(id) => {
                        writer.insert(summaries[id as usize]).unwrap();
                    }
                    Op::Delete(id) => {
                        writer.delete(ObjectId(id)).unwrap();
                    }
                    Op::Update(id) => {
                        writer.update(summaries[id as usize]).unwrap();
                    }
                }
            }
        });
        // Readers on the pinned snapshot, racing the writer.
        for threads in [1usize, 2, 8] {
            let outcome = BatchExecutor::new(threads).run_shared(&pinned, &requests);
            assert_eq!(
                fingerprint(&outcome),
                before,
                "pinned snapshot changed under a concurrent writer ({threads} threads)"
            );
        }
    });

    assert!(engine.epoch() > 0);
    // A fresh reader sees the post-script tree, and it is valid.
    engine.versioned().snapshot().validate().unwrap();
    std::fs::remove_file(&store_path).ok();
}
