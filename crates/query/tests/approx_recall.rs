//! Recall-measurement harness for the approximate AKNN path.
//!
//! Three properties pin the dial semantics, for any seeded workload:
//!
//! 1. **Exact dial ⇒ recall 1.0**: at `RecallDial::Exact` both backends
//!    answer bit-identically to the exact engine — ids *and* IEEE-754
//!    distance bits.
//! 2. **LSH recall is monotone in the probe budget**: the multi-probe
//!    sequence is prefix-nested, so the candidate pool at budget `b` is
//!    a subset of the pool at `b + 1`, and recall@k can only rise.
//! 3. **Every returned `(dist, id)` pair is bit-identical to an
//!    exact-oracle pair**: the dial moves recall, never the reported
//!    distance of any returned object.

use fuzzy_core::metric::L2;
use fuzzy_core::{FuzzyObject, ObjectId, Threshold};
use fuzzy_geom::Point;
use fuzzy_index::{
    ApproxIndex, LshConfig, LshIndex, RTree, RTreeConfig, RecallDial, VpTree, VpTreeConfig,
};
use fuzzy_query::{
    approx_aknn, metric_aknn_brute, recall_at_k, AknnConfig, ApproxConfig, DistBound, QueryEngine,
};
use fuzzy_store::{MemStore, ObjectStore};
use proptest::prelude::*;

/// A deterministic pseudo-random fuzzy object (xorshift, no external RNG).
fn blob(id: u64, salt: u64) -> FuzzyObject<2> {
    let mut state = (id ^ salt.rotate_left(23)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let (cx, cy) = ((id % 9) as f64 * 3.0 + rnd(), (id / 9) as f64 * 3.0 + rnd());
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..12 {
        let r = rnd();
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        mus.push((((1.0 - r) * 10.0).round() / 10.0).clamp(0.1, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

fn store_of(n: u64, salt: u64) -> MemStore<2> {
    MemStore::from_objects((0..n).map(|i| blob(i, salt))).unwrap()
}

/// Render an answer as ids plus raw distance bits — byte-identity proof.
fn fingerprint(result: &fuzzy_query::AknnResult) -> String {
    result
        .neighbors
        .iter()
        .map(|n| match n.dist {
            DistBound::Exact(d) => format!("{}={:016x}", n.id.0, d.to_bits()),
            _ => format!("{}=?", n.id.0),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn backends(store: &MemStore<2>) -> (LshIndex<2>, VpTree<2>) {
    let lsh = LshIndex::build(store.summaries(), LshConfig::default());
    let vp = VpTree::build(&L2, store.summaries(), VpTreeConfig::default());
    (lsh, vp)
}

#[test]
fn exact_dial_matches_exact_engine_bitwise() {
    for salt in [0_u64, 7, 1234] {
        let store = store_of(70, salt);
        let tree = RTree::bulk_load(
            store.summaries().to_vec(),
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
        );
        let engine = QueryEngine::new(&tree, &store);
        let (lsh, vp) = backends(&store);
        let cfg = ApproxConfig::at(RecallDial::Exact);
        for qid in [0_u64, 13, 42, 69] {
            let q = store.probe(ObjectId(qid)).unwrap();
            for (k, alpha) in [(1, 0.5), (5, 0.5), (10, 0.3), (7, 0.8)] {
                let exact = engine.aknn_exact(&q, k, alpha, &AknnConfig::lb_lp_ub()).unwrap();
                let t = Threshold::at(alpha);
                let via_lsh = approx_aknn(&L2, &lsh, &store, &q, k, t, &cfg).unwrap();
                let via_vp = approx_aknn(&L2, &vp, &store, &q, k, t, &cfg).unwrap();
                assert_eq!(fingerprint(&via_lsh), fingerprint(&exact), "lsh exact dial");
                assert_eq!(fingerprint(&via_vp), fingerprint(&exact), "vptree exact dial");
                assert_eq!(recall_at_k(&via_lsh, &exact), 1.0);
                assert_eq!(recall_at_k(&via_vp, &exact), 1.0);
            }
        }
    }
}

#[test]
fn lsh_recall_monotone_in_probe_budget() {
    const BUDGETS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
    for salt in [0_u64, 1, 2, 3, 4] {
        let store = store_of(90, salt);
        let tree = RTree::bulk_load(
            store.summaries().to_vec(),
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
        );
        let engine = QueryEngine::new(&tree, &store);
        let lsh = LshIndex::build(store.summaries(), LshConfig::default());
        // FoF rounds off: monotonicity is a property of the raw pools.
        let mut last = -1.0_f64;
        for budget in BUDGETS {
            let cfg = ApproxConfig { dial: RecallDial::Budget(budget), fof_rounds: 0 };
            let mut total = 0.0;
            let mut count = 0;
            for qid in (0..90).step_by(9) {
                let q = store.probe(ObjectId(qid)).unwrap();
                let exact = engine.aknn_exact(&q, 10, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
                let approx =
                    approx_aknn(&L2, &lsh, &store, &q, 10, Threshold::at(0.5), &cfg).unwrap();
                total += recall_at_k(&approx, &exact);
                count += 1;
            }
            let mean = total / count as f64;
            assert!(
                mean >= last - 1e-12,
                "salt {salt}: recall fell from {last} to {mean} at budget {budget}"
            );
            last = mean;
        }
    }
}

#[test]
fn lsh_pools_nest_across_budgets() {
    let store = store_of(80, 99);
    let lsh = LshIndex::build(store.summaries(), LshConfig::default());
    for qid in [0_u64, 17, 55] {
        let q = store.probe(ObjectId(qid)).unwrap().rep_point();
        let mut prev: Vec<ObjectId> = Vec::new();
        for budget in [1.0, 2.0, 3.0, 5.0, 9.0] {
            let mut pool = Vec::new();
            lsh.candidates(&L2, &q, 10, RecallDial::Budget(budget), &mut pool);
            assert!(
                prev.iter().all(|id| pool.binary_search(id).is_ok()),
                "pool at larger budget must contain the smaller pool"
            );
            prev = pool;
        }
    }
}

#[test]
fn returned_pairs_are_bitwise_oracle_pairs() {
    let salt = 31_u64;
    let n = 75_u64;
    let store = store_of(n, salt);
    let ids: Vec<ObjectId> = store.summaries().iter().map(|s| s.id).collect();
    let (lsh, vp) = backends(&store);
    for qid in [3_u64, 40, 74] {
        let q = store.probe(ObjectId(qid)).unwrap();
        let t = Threshold::at(0.5);
        // Full oracle ranking: every object's exact pair.
        let oracle = metric_aknn_brute(&L2, &store, &ids, &q, n as usize, t).unwrap();
        for dial in [RecallDial::Budget(1.0), RecallDial::Budget(4.0), RecallDial::Exact] {
            let cfg = ApproxConfig::at(dial);
            for result in [
                approx_aknn(&L2, &lsh, &store, &q, 10, t, &cfg).unwrap(),
                approx_aknn(&L2, &vp, &store, &q, 10, t, &cfg).unwrap(),
            ] {
                for nb in &result.neighbors {
                    let DistBound::Exact(d) = nb.dist else { panic!("approx must be exact") };
                    let found = oracle.neighbors.iter().find(|o| o.id == nb.id).unwrap();
                    let DistBound::Exact(od) = found.dist else { unreachable!() };
                    assert_eq!(
                        d.to_bits(),
                        od.to_bits(),
                        "returned pair for {} must be bit-identical to the oracle",
                        nb.id
                    );
                }
            }
        }
    }
}

#[test]
fn vptree_slack_widens_the_pool() {
    let store = store_of(120, 5);
    let vp = VpTree::build(&L2, store.summaries(), VpTreeConfig::default());
    let q = store.probe(ObjectId(60)).unwrap().rep_point();
    let mut sizes = Vec::new();
    for eps in [0.0, 0.5, 2.0] {
        let mut pool = Vec::new();
        vp.candidates(&L2, &q, 10, RecallDial::Budget(eps), &mut pool);
        assert!(pool.len() >= 10, "slack pool must hold at least k candidates");
        sizes.push(pool.len());
    }
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "ε must widen the pool: {sizes:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The three dial properties under arbitrary seeded workloads.
    #[test]
    fn dial_properties_hold_for_any_seeded_workload(
        salt in any::<u64>(),
        n in 12u64..60,
        k in 1usize..8,
    ) {
        let store = store_of(n, salt);
        let tree = RTree::bulk_load(
            store.summaries().to_vec(),
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
        );
        let engine = QueryEngine::new(&tree, &store);
        let ids: Vec<ObjectId> = store.summaries().iter().map(|s| s.id).collect();
        let (lsh, vp) = backends(&store);
        let t = Threshold::at(0.5);
        let q = store.probe(ObjectId(salt % n)).unwrap();
        let exact = engine.aknn_exact(&q, k, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
        let oracle = metric_aknn_brute(&L2, &store, &ids, &q, n as usize, t).unwrap();

        // (1) exact dial ⇒ bitwise-exact answer, recall 1.0.
        let at_exact = ApproxConfig::at(RecallDial::Exact);
        let lsh_exact = approx_aknn(&L2, &lsh, &store, &q, k, t, &at_exact).unwrap();
        let vp_exact = approx_aknn(&L2, &vp, &store, &q, k, t, &at_exact).unwrap();
        prop_assert_eq!(fingerprint(&lsh_exact), fingerprint(&exact));
        prop_assert_eq!(fingerprint(&vp_exact), fingerprint(&exact));

        // (2) LSH recall monotone across a budget ladder (raw pools).
        let mut last = -1.0_f64;
        for budget in [1.0, 3.0, 9.0] {
            let cfg = ApproxConfig { dial: RecallDial::Budget(budget), fof_rounds: 0 };
            let r = recall_at_k(
                &approx_aknn(&L2, &lsh, &store, &q, k, t, &cfg).unwrap(),
                &exact,
            );
            prop_assert!(r >= last - 1e-12, "recall fell from {} to {} at {}", last, r, budget);
            last = r;
        }

        // (3) every returned pair is a bitwise oracle pair.
        for result in [
            approx_aknn(&L2, &lsh, &store, &q, k, t, &ApproxConfig::default()).unwrap(),
            approx_aknn(&L2, &vp, &store, &q, k, t, &ApproxConfig::default()).unwrap(),
        ] {
            for nb in &result.neighbors {
                let DistBound::Exact(d) = nb.dist else { panic!("approx must be exact") };
                let found = oracle.neighbors.iter().find(|o| o.id == nb.id).unwrap();
                let DistBound::Exact(od) = found.dist else { unreachable!() };
                prop_assert_eq!(d.to_bits(), od.to_bits());
            }
        }
    }
}
