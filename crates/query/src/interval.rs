//! Interval sets over the probability axis `(0, 1]`.
//!
//! RKNN qualifying ranges are unions of intervals with mixed open/closed
//! endpoints — the paper's own example (Figure 3) is
//! `⟨B, [0.3, 0.45] ∪ (0.55, 0.6]⟩`. Because the α-distance is a
//! left-continuous staircase, every qualifying range produced by the
//! algorithms is a finite union of such intervals; this module gives them
//! an exact algebra (no epsilon fuzz).

use std::fmt;

/// One interval over the probability axis with explicit endpoint
/// closedness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower endpoint value.
    pub lo: f64,
    /// Is the lower endpoint included?
    pub lo_closed: bool,
    /// Upper endpoint value.
    pub hi: f64,
    /// Is the upper endpoint included?
    pub hi_closed: bool,
}

impl Interval {
    /// The canonical empty interval (what NaN endpoints normalize to).
    pub const EMPTY: Interval =
        Interval { lo: f64::INFINITY, lo_closed: false, hi: f64::NEG_INFINITY, hi_closed: false };

    /// General constructor. NaN endpoints — reachable from upstream f64
    /// arithmetic (`0 · ∞`, `∞ − ∞` in distance-profile math) — normalize
    /// to [`Interval::EMPTY`]: an interval that cannot decide membership
    /// contains nothing. This keeps the [`IntervalSet`] algebra total
    /// (the merge step assumes a sorted order NaN would poison).
    pub fn new(lo: f64, lo_closed: bool, hi: f64, hi_closed: bool) -> Self {
        if lo.is_nan() || hi.is_nan() {
            return Self::EMPTY;
        }
        Self { lo, lo_closed, hi, hi_closed }
    }

    /// Closed interval `[lo, hi]` (NaN endpoints yield the empty interval).
    pub fn closed(lo: f64, hi: f64) -> Self {
        Self::new(lo, true, hi, true)
    }

    /// Half-open interval `(lo, hi]` — the natural shape of α-distance
    /// constancy ranges (NaN endpoints yield the empty interval).
    pub fn left_open(lo: f64, hi: f64) -> Self {
        Self::new(lo, false, hi, true)
    }

    /// Is the interval empty (inverted, or a point with an open end)?
    /// NaN-safe: an interval with an undecidable endpoint is empty, so
    /// intervals built via struct literal are defused here as well.
    pub fn is_empty(&self) -> bool {
        match self.lo.partial_cmp(&self.hi) {
            None | Some(std::cmp::Ordering::Greater) => true, // NaN endpoint or inverted
            Some(std::cmp::Ordering::Equal) => !(self.lo_closed && self.hi_closed),
            Some(std::cmp::Ordering::Less) => false,
        }
    }

    /// Does the interval contain probability `x`?
    pub fn contains(&self, x: f64) -> bool {
        let above_lo = x > self.lo || (self.lo_closed && x == self.lo);
        let below_hi = x < self.hi || (self.hi_closed && x == self.hi);
        above_lo && below_hi
    }

    /// Length of the interval (endpoint closedness has measure zero).
    pub fn measure(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Do two intervals overlap or touch compatibly (union is one
    /// interval)?
    fn merges_with(&self, other: &Interval) -> bool {
        // Assumes self.lo-key <= other.lo-key (sorted order).
        if other.lo < self.hi {
            return true;
        }
        if other.lo == self.hi {
            return self.hi_closed || other.lo_closed;
        }
        false
    }

    /// Intersection with another interval, `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let (lo, lo_closed) = match self.lo.total_cmp(&other.lo) {
            std::cmp::Ordering::Greater => (self.lo, self.lo_closed),
            std::cmp::Ordering::Less => (other.lo, other.lo_closed),
            std::cmp::Ordering::Equal => (self.lo, self.lo_closed && other.lo_closed),
        };
        let (hi, hi_closed) = match self.hi.total_cmp(&other.hi) {
            std::cmp::Ordering::Less => (self.hi, self.hi_closed),
            std::cmp::Ordering::Greater => (other.hi, other.hi_closed),
            std::cmp::Ordering::Equal => (self.hi, self.hi_closed && other.hi_closed),
        };
        let out = Interval { lo, lo_closed, hi, hi_closed };
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}, {}{}",
            if self.lo_closed { '[' } else { '(' },
            self.lo,
            self.hi,
            if self.hi_closed { ']' } else { ')' },
        )
    }
}

/// A normalized union of disjoint, sorted intervals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalSet {
    parts: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A set with a single interval (empty input yields the empty set).
    pub fn from_interval(iv: Interval) -> Self {
        let mut s = Self::empty();
        s.push(iv);
        s
    }

    /// Add an interval, keeping the set normalized.
    pub fn push(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        self.parts.push(iv);
        self.normalize();
    }

    fn normalize(&mut self) {
        self.parts.retain(|p| !p.is_empty());
        // Sort by (lo, open-before-closed? closed-lo first).
        self.parts
            .sort_by(|a, b| a.lo.total_cmp(&b.lo).then_with(|| b.lo_closed.cmp(&a.lo_closed)));
        let mut merged: Vec<Interval> = Vec::with_capacity(self.parts.len());
        for &p in &self.parts {
            match merged.last_mut() {
                Some(last) if last.merges_with(&p) => {
                    // Extend the upper end if p reaches further.
                    match p.hi.total_cmp(&last.hi) {
                        std::cmp::Ordering::Greater => {
                            last.hi = p.hi;
                            last.hi_closed = p.hi_closed;
                        }
                        std::cmp::Ordering::Equal => {
                            last.hi_closed |= p.hi_closed;
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
                _ => merged.push(p),
            }
        }
        self.parts = merged;
    }

    /// The disjoint intervals, ascending.
    pub fn intervals(&self) -> &[Interval] {
        &self.parts
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Does the set contain probability `x`?
    pub fn contains(&self, x: f64) -> bool {
        self.parts.iter().any(|p| p.contains(x))
    }

    /// Total measure (sum of interval lengths).
    pub fn measure(&self) -> f64 {
        self.parts.iter().map(Interval::measure).sum()
    }

    /// Union with another set.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        for &p in &other.parts {
            out.parts.push(p);
        }
        out.normalize();
        out
    }

    /// Intersection with another set.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = IntervalSet::empty();
        for a in &self.parts {
            for b in &other.parts {
                if let Some(iv) = a.intersect(b) {
                    out.parts.push(iv);
                }
            }
        }
        out.normalize();
        out
    }

    /// Structural equality up to endpoint tolerance `tol` (for comparing
    /// algorithm outputs that differ only by floating-point noise).
    pub fn approx_eq(&self, other: &IntervalSet, tol: f64) -> bool {
        self.parts.len() == other.parts.len()
            && self.parts.iter().zip(&other.parts).all(|(a, b)| {
                (a.lo - b.lo).abs() <= tol
                    && (a.hi - b.hi).abs() <= tol
                    && a.lo_closed == b.lo_closed
                    && a.hi_closed == b.hi_closed
            })
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "∅");
        }
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_respects_closedness() {
        let iv = Interval::left_open(0.3, 0.6);
        assert!(!iv.contains(0.3));
        assert!(iv.contains(0.300001));
        assert!(iv.contains(0.6));
        assert!(!iv.contains(0.600001));
        let c = Interval::closed(0.3, 0.6);
        assert!(c.contains(0.3));
    }

    #[test]
    fn empty_detection() {
        assert!(Interval::left_open(0.5, 0.5).is_empty());
        assert!(!Interval::closed(0.5, 0.5).is_empty());
        assert!(Interval::closed(0.6, 0.5).is_empty());
    }

    #[test]
    fn union_merges_touching_intervals() {
        let mut s = IntervalSet::empty();
        s.push(Interval::closed(0.3, 0.45));
        s.push(Interval::left_open(0.45, 0.5));
        assert_eq!(s.intervals().len(), 1);
        assert_eq!(s.intervals()[0], Interval::closed(0.3, 0.5));
    }

    #[test]
    fn union_keeps_gap_between_open_endpoints() {
        // [0.3, 0.45) ∪ (0.45, 0.6] must NOT merge: 0.45 excluded by both.
        let mut s = IntervalSet::empty();
        s.push(Interval { lo: 0.3, lo_closed: true, hi: 0.45, hi_closed: false });
        s.push(Interval::left_open(0.45, 0.6));
        assert_eq!(s.intervals().len(), 2);
        assert!(!s.contains(0.45));
        assert!(s.contains(0.44));
        assert!(s.contains(0.46));
    }

    #[test]
    fn paper_example_figure3() {
        // B qualifies on [0.3, 0.45] ∪ (0.55, 0.6].
        let mut b = IntervalSet::empty();
        b.push(Interval::closed(0.3, 0.45));
        b.push(Interval::left_open(0.55, 0.6));
        assert_eq!(b.intervals().len(), 2);
        assert!(b.contains(0.45));
        assert!(!b.contains(0.5));
        assert!(!b.contains(0.55));
        assert!(b.contains(0.56));
        assert!((b.measure() - 0.2).abs() < 1e-12);
        assert_eq!(b.to_string(), "[0.3, 0.45] ∪ (0.55, 0.6]");
    }

    #[test]
    fn overlapping_pushes_normalize() {
        let mut s = IntervalSet::empty();
        s.push(Interval::closed(0.1, 0.5));
        s.push(Interval::closed(0.3, 0.7));
        s.push(Interval::closed(0.65, 0.8));
        assert_eq!(s.intervals(), &[Interval::closed(0.1, 0.8)]);
    }

    #[test]
    fn intersection() {
        let a = IntervalSet::from_interval(Interval::closed(0.2, 0.6));
        let mut b = IntervalSet::empty();
        b.push(Interval::left_open(0.4, 0.9));
        b.push(Interval::closed(0.05, 0.1));
        let i = a.intersect(&b);
        assert_eq!(i.intervals(), &[Interval::left_open(0.4, 0.6)]);
        // Intersection with empty is empty.
        assert!(a.intersect(&IntervalSet::empty()).is_empty());
    }

    #[test]
    fn union_of_sets_is_commutative() {
        let mut a = IntervalSet::empty();
        a.push(Interval::closed(0.1, 0.3));
        let mut b = IntervalSet::empty();
        b.push(Interval::left_open(0.25, 0.5));
        b.push(Interval::closed(0.7, 0.9));
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).intervals().len(), 2);
    }

    #[test]
    fn point_intervals() {
        let mut s = IntervalSet::empty();
        s.push(Interval::closed(0.5, 0.5));
        assert!(s.contains(0.5));
        assert_eq!(s.measure(), 0.0);
        // Point touching a closed interval merges.
        s.push(Interval::left_open(0.5, 0.7));
        assert_eq!(s.intervals(), &[Interval::closed(0.5, 0.7)]);
    }

    #[test]
    fn nan_endpoints_normalize_to_empty() {
        assert!(Interval::closed(f64::NAN, 0.5).is_empty());
        assert!(Interval::left_open(0.2, f64::NAN).is_empty());
        assert_eq!(Interval::new(f64::NAN, true, f64::NAN, true), Interval::EMPTY);
        // Struct literals bypass the constructor; is_empty still defuses
        // them, so normalize() drops them from sets.
        let rogue = Interval { lo: f64::NAN, lo_closed: true, hi: 0.9, hi_closed: true };
        assert!(rogue.is_empty());
        assert!(!rogue.contains(0.5));
        let mut s = IntervalSet::empty();
        s.push(rogue);
        s.push(Interval::closed(0.1, 0.2));
        s.push(Interval::closed(f64::NAN, f64::NAN));
        assert_eq!(s.intervals(), &[Interval::closed(0.1, 0.2)]);
        assert_eq!(s.measure(), 0.1_f64.max(0.2 - 0.1));
        // Intersection with a NaN-poisoned interval is empty, not NaN.
        assert!(Interval::closed(0.0, 1.0).intersect(&rogue).is_none());
    }

    #[test]
    fn approx_eq_tolerates_noise() {
        let a = IntervalSet::from_interval(Interval::closed(0.3, 0.6));
        let b = IntervalSet::from_interval(Interval::closed(0.3 + 1e-12, 0.6 - 1e-12));
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c = IntervalSet::from_interval(Interval::left_open(0.3, 0.6));
        assert!(!a.approx_eq(&c, 1e-9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One raw interval: endpoints snapped to a coarse lattice so exact
    /// endpoint coincidences (the interesting merge cases) are common,
    /// with occasional NaN injection to exercise the normalization path.
    fn raw_interval() -> impl Strategy<Value = Interval> {
        (0u32..40, 0u32..40, any::<bool>(), any::<bool>(), 0u32..24).prop_map(
            |(a, b, lo_closed, hi_closed, poison)| {
                let lo = a as f64 / 32.0;
                let hi = b as f64 / 32.0;
                match poison {
                    0 => Interval::new(f64::NAN, lo_closed, hi, hi_closed),
                    1 => Interval::new(lo, lo_closed, f64::NAN, hi_closed),
                    _ => Interval::new(lo, lo_closed, hi, hi_closed),
                }
            },
        )
    }

    /// Membership oracle: probe points covering every endpoint, midpoints
    /// between adjacent lattice values, and outside values. Since all
    /// finite endpoints live on the 1/32 lattice, probing every 1/64 step
    /// distinguishes any pair of structurally different sets.
    fn probes() -> Vec<f64> {
        let mut out: Vec<f64> = (-2i32..82).map(|i| i as f64 / 64.0).collect();
        out.push(f64::INFINITY);
        out.push(f64::NEG_INFINITY);
        out
    }

    fn brute_contains(parts: &[Interval], x: f64) -> bool {
        parts.iter().any(|p| p.contains(x))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn set_union_matches_membership_oracle(
            xs in prop::collection::vec(raw_interval(), 0..8),
            ys in prop::collection::vec(raw_interval(), 0..8),
        ) {
            let mut a = IntervalSet::empty();
            for &iv in &xs {
                a.push(iv);
            }
            let mut b = IntervalSet::empty();
            for &iv in &ys {
                b.push(iv);
            }
            let u = a.union(&b);
            // Normalized form: sorted, disjoint, non-empty, non-adjacent.
            for p in u.intervals() {
                prop_assert!(!p.is_empty());
            }
            for w in u.intervals().windows(2) {
                prop_assert!(w[0].hi <= w[1].lo, "sorted and disjoint: {u}");
                prop_assert!(
                    !w[0].merges_with(&w[1]),
                    "adjacent parts must have been merged: {u}"
                );
            }
            // Membership agrees with the raw input at every probe point.
            for x in probes() {
                let want = brute_contains(&xs, x) || brute_contains(&ys, x);
                prop_assert_eq!(u.contains(x), want, "x={} in {}", x, u);
            }
        }

        #[test]
        fn set_intersection_matches_membership_oracle(
            xs in prop::collection::vec(raw_interval(), 0..8),
            ys in prop::collection::vec(raw_interval(), 0..8),
        ) {
            let mut a = IntervalSet::empty();
            for &iv in &xs {
                a.push(iv);
            }
            let mut b = IntervalSet::empty();
            for &iv in &ys {
                b.push(iv);
            }
            let i = a.intersect(&b);
            for x in probes() {
                let want = brute_contains(&xs, x) && brute_contains(&ys, x);
                prop_assert_eq!(i.contains(x), want, "x={} in {}", x, i);
            }
            // Measure is consistent with the two operands.
            prop_assert!(i.measure() <= a.measure() + 1e-12);
            prop_assert!(i.measure() <= b.measure() + 1e-12);
        }
    }
}
