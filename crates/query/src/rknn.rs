//! RKNN query processing (Section 4).
//!
//! Four algorithms, in increasing sophistication:
//!
//! * [`RknnAlgorithm::Naive`] — probe every object, build its distance
//!   profile and sweep; the paper's strawman ("enumerating all values in
//!   `U_D`"), also the ground-truth oracle for tests.
//! * [`RknnAlgorithm::Basic`] — Algorithm 3: repeated AKNN queries at the
//!   critical probabilities of the current kNN members (Lemma 2).
//! * [`RknnAlgorithm::Rss`] — Algorithm 4: one AKNN at `αe` yields the
//!   radius `r = d_k(αe)`; one range search at `αs` collects every object
//!   whose lower bound is within `r` (Lemma 3 guarantees no false
//!   dismissals); refinement then runs entirely over this in-memory
//!   candidate set.
//! * [`RknnAlgorithm::RssIcr`] — Algorithm 5: like RSS, but refinement
//!   steps leap over every critical value at which a member provably stays
//!   within the (k+1)-th distance (Lemma 4), sharply cutting CPU work for
//!   wide probability ranges.

use crate::aknn::{check_deadline, search, AknnConfig, QueryScratch, SearchMode, SearchOutcome};
use crate::error::QueryError;
use crate::interval::{Interval, IntervalSet};
use crate::result::{RknnItem, RknnResult};
use crate::shard::{sharded_search, ShardScratch};
use crate::stats::QueryStats;
use crate::sweep::{exact_sweep, ProfiledCandidate};
use fuzzy_core::metric::Metric;
use fuzzy_core::{DistanceProfile, FuzzyObject, ObjectId, Threshold};
use fuzzy_geom::Mbr;
use fuzzy_index::NodeAccess;
use fuzzy_store::ObjectStore;
use std::collections::HashMap;
use std::time::Instant;

/// The index-touching half of the RKNN algorithms, abstracted so
/// Algorithms 3–5 run unchanged over a single tree or a shard forest.
///
/// Two primitives reach the index: the force-exact AKNN call (Algorithms
/// 3–5, step 1) and the RSS range scan (Algorithm 4, step 2). Everything
/// else — critical-probability stepping, profile refinement — is
/// in-memory and backend-agnostic, which is exactly why sharded RKNN is
/// byte-identical: the forest backend returns the same exact top-k
/// (canonical merge) and the same candidate *set* (shards partition the
/// data; the caller sorts ids before refinement).
pub(crate) trait SearchBackend<S: ObjectStore<D>, const D: usize> {
    /// Force-exact AKNN: the k nearest objects at `t`, every distance
    /// probed exact under `metric`.
    fn search_exact<M: Metric<D>>(
        &mut self,
        metric: &M,
        store: &S,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
    ) -> Result<SearchOutcome<D>, QueryError>;

    /// RSS candidate collection: ids of every object whose lower-bound
    /// distance from `q_cut` at `t_start` is within `r_sq` (squared).
    /// Charges node/bound costs to `stats`; the caller sorts the ids.
    fn range_candidates<M: Metric<D>>(
        &mut self,
        metric: &M,
        q_cut: &Mbr<D>,
        t_start: Threshold,
        r_sq: f64,
        cfg: &AknnConfig,
        stats: &mut QueryStats,
    ) -> Result<Vec<ObjectId>, QueryError>;
}

/// The classic backend: one tree, one scratch.
pub(crate) struct SingleTreeBackend<'a, A, const D: usize> {
    pub tree: &'a A,
    pub scratch: &'a mut QueryScratch<D>,
}

impl<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize> SearchBackend<S, D>
    for SingleTreeBackend<'_, A, D>
{
    fn search_exact<M: Metric<D>>(
        &mut self,
        metric: &M,
        store: &S,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
    ) -> Result<SearchOutcome<D>, QueryError> {
        search(metric, self.tree, store, q, k, t, cfg, SearchMode::Exact, self.scratch, None, &[])
    }

    fn range_candidates<M: Metric<D>>(
        &mut self,
        metric: &M,
        q_cut: &Mbr<D>,
        t_start: Threshold,
        r_sq: f64,
        cfg: &AknnConfig,
        stats: &mut QueryStats,
    ) -> Result<Vec<ObjectId>, QueryError> {
        range_candidates_one(metric, self.tree, q_cut, t_start, r_sq, cfg, stats)
    }
}

/// The scatter-gather backend: the AKNN primitive fans out across the
/// shards with the shared τ bound; the range scan unions per-shard range
/// searches (shards partition the entries, so the union is exact).
pub(crate) struct ForestBackend<'a, A, const D: usize> {
    pub shards: &'a [A],
    pub scratch: &'a mut ShardScratch<D>,
}

impl<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize> SearchBackend<S, D>
    for ForestBackend<'_, A, D>
{
    fn search_exact<M: Metric<D>>(
        &mut self,
        metric: &M,
        store: &S,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
    ) -> Result<SearchOutcome<D>, QueryError> {
        sharded_search(metric, self.shards, store, q, k, t, cfg, true, self.scratch)
    }

    fn range_candidates<M: Metric<D>>(
        &mut self,
        metric: &M,
        q_cut: &Mbr<D>,
        t_start: Threshold,
        r_sq: f64,
        cfg: &AknnConfig,
        stats: &mut QueryStats,
    ) -> Result<Vec<ObjectId>, QueryError> {
        let mut ids = Vec::new();
        for shard in self.shards {
            ids.extend(range_candidates_one(metric, shard, q_cut, t_start, r_sq, cfg, stats)?);
        }
        Ok(ids)
    }
}

/// One tree's share of the Lemma-3 range scan (Algorithm 4, step 2).
fn range_candidates_one<M: Metric<D>, A: NodeAccess<D>, const D: usize>(
    metric: &M,
    tree: &A,
    q_cut: &Mbr<D>,
    t_start: Threshold,
    r_sq: f64,
    cfg: &AknnConfig,
    stats: &mut QueryStats,
) -> Result<Vec<ObjectId>, QueryError> {
    let range = fuzzy_index::range_search(
        tree,
        r_sq,
        |mbr| metric.min_box_dist_sq(mbr, q_cut),
        |e| {
            if cfg.improved_lower_bound {
                e.lower_bound_dist_sq_in(metric, q_cut, t_start)
            } else {
                metric.min_box_dist_sq(&e.support_mbr, q_cut)
            }
        },
    )?;
    stats.node_accesses += range.node_accesses;
    stats.node_disk_reads += range.node_disk_reads;
    stats.bound_evals += range.hits.len() as u64;
    Ok(range.hits.iter().map(|hit| hit.entry.id).collect())
}

/// RKNN algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RknnAlgorithm {
    /// Probe everything; exact sweep. Oracle / strawman.
    Naive,
    /// Algorithm 3 — critical-probability stepping with full AKNN per step.
    Basic,
    /// Algorithm 4 — reduced search space, basic refinement.
    Rss,
    /// Algorithm 5 — reduced search space + improved candidate refinement.
    RssIcr,
}

impl RknnAlgorithm {
    /// Name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Naive => "Naive",
            Self::Basic => "Basic RKNN",
            Self::Rss => "RSS",
            Self::RssIcr => "RSS-ICR",
        }
    }

    /// The three variants the paper benchmarks in §6.3.
    pub fn paper_variants() -> [RknnAlgorithm; 3] {
        [Self::Basic, Self::Rss, Self::RssIcr]
    }
}

/// Profile cache: one α-distance profile per (object, query) pair per
/// query execution.
struct ProfileCache<const D: usize> {
    map: HashMap<ObjectId, DistanceProfile>,
    computations: u64,
}

impl<const D: usize> ProfileCache<D> {
    fn new() -> Self {
        Self { map: HashMap::new(), computations: 0 }
    }

    fn get_or_compute<M: Metric<D>>(
        &mut self,
        metric: &M,
        obj: &FuzzyObject<D>,
        q: &FuzzyObject<D>,
    ) -> &DistanceProfile {
        if !self.map.contains_key(&obj.id()) {
            self.computations += 1;
            let p = metric.distance_profile(obj, q);
            self.map.insert(obj.id(), p);
        }
        &self.map[&obj.id()]
    }

    fn get(&self, id: ObjectId) -> &DistanceProfile {
        &self.map[&id]
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run<M: Metric<D>, B: SearchBackend<S, D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    backend: &mut B,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    alpha_start: f64,
    alpha_end: f64,
    algo: RknnAlgorithm,
    cfg: &AknnConfig,
) -> Result<RknnResult, QueryError> {
    let start = Instant::now();
    let mut stats = QueryStats::default();
    let items = match algo {
        RknnAlgorithm::Naive => {
            naive(metric, store, q, k, alpha_start, alpha_end, cfg, &mut stats)?
        }
        RknnAlgorithm::Basic => {
            basic(metric, backend, store, q, k, alpha_start, alpha_end, cfg, &mut stats)?
        }
        RknnAlgorithm::Rss | RknnAlgorithm::RssIcr => rss(
            metric,
            backend,
            store,
            q,
            k,
            alpha_start,
            alpha_end,
            cfg,
            algo == RknnAlgorithm::RssIcr,
            &mut stats,
        )?,
    };

    stats.wall = start.elapsed();
    Ok(RknnResult { items, stats })
}

/// Naive: probe everything, profile everything, sweep exactly.
#[allow(clippy::too_many_arguments)]
fn naive<M: Metric<D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    alpha_start: f64,
    alpha_end: f64,
    cfg: &AknnConfig,
    stats: &mut QueryStats,
) -> Result<Vec<RknnItem>, QueryError> {
    let ids: Vec<ObjectId> = store.summaries().iter().map(|s| s.id).collect();
    let mut profiles: Vec<(ObjectId, DistanceProfile)> = Vec::with_capacity(ids.len());
    for id in ids {
        check_deadline(cfg.deadline)?;
        let probe = store.probe_traced(id)?;
        stats.object_accesses += probe.disk_read as u64;
        stats.profile_computations += 1;
        profiles.push((id, metric.distance_profile(&probe.object, q)));
    }
    stats.candidates = profiles.len() as u64;
    let cands: Vec<ProfiledCandidate<'_>> =
        profiles.iter().map(|(id, p)| ProfiledCandidate { id: *id, profile: p }).collect();
    Ok(exact_sweep(&cands, k, alpha_start, alpha_end))
}

/// Algorithm 3: step through critical probabilities with one AKNN each.
#[allow(clippy::too_many_arguments)]
fn basic<M: Metric<D>, B: SearchBackend<S, D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    backend: &mut B,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    alpha_start: f64,
    alpha_end: f64,
    cfg: &AknnConfig,
    stats: &mut QueryStats,
) -> Result<Vec<RknnItem>, QueryError> {
    let mut cache: ProfileCache<D> = ProfileCache::new();
    let mut acc: HashMap<ObjectId, IntervalSet> = HashMap::new();
    let mut t = Threshold::at(alpha_start);

    loop {
        check_deadline(cfg.deadline)?;
        let out = backend.search_exact(metric, store, q, k, t, cfg)?;
        stats.aknn_calls += 1;
        stats.object_accesses += out.stats.object_accesses;
        stats.node_accesses += out.stats.node_accesses;
        stats.node_disk_reads += out.stats.node_disk_reads;
        stats.distance_evals += out.stats.distance_evals;
        stats.bound_evals += out.stats.bound_evals;
        if out.neighbors.is_empty() {
            break;
        }
        // β_A = min{α' ∈ Ω_Q(A) | α' covers t}; α* = min over the set.
        let mut alpha_star = f64::INFINITY;
        for n in &out.neighbors {
            let obj = n.object.as_ref().expect("force_exact probes every neighbour");
            let beta = cache.get_or_compute(metric, obj, q).next_critical(t).unwrap_or(1.0);
            alpha_star = alpha_star.min(beta);
        }
        let hi = alpha_star.min(alpha_end);
        let iv = Interval::new(t.value, !t.strict, hi, true);
        for n in &out.neighbors {
            acc.entry(n.id).or_default().push(iv);
        }
        if alpha_star >= alpha_end {
            break;
        }
        t = Threshold::above(alpha_star);
    }

    stats.profile_computations += cache.computations;
    Ok(collect(acc))
}

/// Algorithms 4/5: reduce the search space, refine candidates in memory.
#[allow(clippy::too_many_arguments)]
fn rss<M: Metric<D>, B: SearchBackend<S, D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    backend: &mut B,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    alpha_start: f64,
    alpha_end: f64,
    cfg: &AknnConfig,
    improved_refinement: bool,
    stats: &mut QueryStats,
) -> Result<Vec<RknnItem>, QueryError> {
    // Step 1 — AKNN at α_e gives the pruning radius r = d_k(α_e).
    let t_end = Threshold::at(alpha_end);
    let out_end = backend.search_exact(metric, store, q, k, t_end, cfg)?;
    stats.aknn_calls += 1;
    stats.object_accesses += out_end.stats.object_accesses;
    stats.node_accesses += out_end.stats.node_accesses;
    stats.node_disk_reads += out_end.stats.node_disk_reads;
    stats.distance_evals += out_end.stats.distance_evals;
    stats.bound_evals += out_end.stats.bound_evals;
    let r = if out_end.neighbors.len() < k {
        f64::INFINITY
    } else {
        out_end.neighbors.iter().map(|n| n.dist.hi()).fold(0.0, f64::max)
    };

    // Step 2 — range search at α_s with radius r (Lemma 3: no object with
    // a lower bound beyond r can ever qualify). Keys and radius are
    // squared — the traversal never takes a square root. `r` is a rounded
    // `sqrt`, so the squared radius is inflated by a few ulps to keep the
    // filter conservative (a boundary candidate is kept, never dropped;
    // refinement discards false positives anyway).
    let t_start = Threshold::at(alpha_start);
    let q_cut = q.cut_mbr(t_start).ok_or(QueryError::EmptyQueryCut)?;
    let r_sq = if r.is_finite() { r * r * (1.0 + 4.0 * f64::EPSILON) } else { f64::INFINITY };
    let mut candidate_ids = backend.range_candidates(metric, &q_cut, t_start, r_sq, cfg, stats)?;

    // Probe every candidate once and build its profile.
    let mut cache: ProfileCache<D> = ProfileCache::new();
    for &id in &candidate_ids {
        check_deadline(cfg.deadline)?;
        let probe = store.probe_traced(id)?;
        stats.object_accesses += probe.disk_read as u64;
        cache.get_or_compute(metric, &probe.object, q);
    }
    candidate_ids.sort_unstable();
    stats.candidates = candidate_ids.len() as u64;
    let has_non_candidates = candidate_ids.len() < store.len();

    // Step 3 — in-memory refinement over the candidate profiles.
    let acc = if improved_refinement {
        refine_icr(&cache, &candidate_ids, k, alpha_start, alpha_end, r, has_non_candidates, cfg)?
    } else {
        refine_basic(&cache, &candidate_ids, k, alpha_start, alpha_end, cfg)?
    };
    stats.profile_computations += cache.computations;
    Ok(collect(acc))
}

/// Basic refinement (the inner loop of Algorithm 3 restricted to the
/// candidate set): advance one critical probability at a time.
fn refine_basic<const D: usize>(
    cache: &ProfileCache<D>,
    candidates: &[ObjectId],
    k: usize,
    alpha_start: f64,
    alpha_end: f64,
    cfg: &AknnConfig,
) -> Result<HashMap<ObjectId, IntervalSet>, QueryError> {
    let mut acc: HashMap<ObjectId, IntervalSet> = HashMap::new();
    let mut t = Threshold::at(alpha_start);
    let mut scratch: Vec<(f64, ObjectId)> = Vec::with_capacity(candidates.len());
    loop {
        check_deadline(cfg.deadline)?;
        scratch.clear();
        for &id in candidates {
            if let Some(d) = cache.get(id).value_at(t) {
                scratch.push((d, id));
            }
        }
        scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if scratch.is_empty() {
            break;
        }
        let nn = &scratch[..k.min(scratch.len())];
        let mut alpha_star = f64::INFINITY;
        for &(_, id) in nn {
            let beta = cache.get(id).next_critical(t).unwrap_or(1.0);
            alpha_star = alpha_star.min(beta);
        }
        let iv = Interval::new(t.value, !t.strict, alpha_star.min(alpha_end), true);
        for &(_, id) in nn {
            acc.entry(id).or_default().push(iv);
        }
        if alpha_star >= alpha_end {
            break;
        }
        t = Threshold::above(alpha_star);
    }
    Ok(acc)
}

/// Improved candidate refinement (Algorithm 5 / Lemma 4): each member A of
/// the current kNN set is safe up to the largest critical value where its
/// distance stays below the (k+1)-th distance `d_{k+1}`; record the whole
/// safe range at once and jump to the earliest safe-range end.
///
/// When objects outside the candidate set exist, `d_{k+1}` is clamped to
/// the pruning radius `r`: every non-candidate keeps a distance > r
/// throughout the range, so `min(d̂_{k+1}, r)` is a sound (conservative)
/// stand-in for the true global (k+1)-th distance.
#[allow(clippy::too_many_arguments)]
fn refine_icr<const D: usize>(
    cache: &ProfileCache<D>,
    candidates: &[ObjectId],
    k: usize,
    alpha_start: f64,
    alpha_end: f64,
    r: f64,
    has_non_candidates: bool,
    cfg: &AknnConfig,
) -> Result<HashMap<ObjectId, IntervalSet>, QueryError> {
    let mut acc: HashMap<ObjectId, IntervalSet> = HashMap::new();
    let mut t = Threshold::at(alpha_start);
    let mut scratch: Vec<(f64, ObjectId)> = Vec::with_capacity(candidates.len());
    loop {
        check_deadline(cfg.deadline)?;
        scratch.clear();
        for &id in candidates {
            if let Some(d) = cache.get(id).value_at(t) {
                scratch.push((d, id));
            }
        }
        scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if scratch.is_empty() {
            break;
        }
        let nn = &scratch[..k.min(scratch.len())];
        let mut dk1 = scratch.get(k).map_or(f64::INFINITY, |&(d, _)| d);
        if has_non_candidates {
            dk1 = dk1.min(r);
        }
        let mut alpha_star = f64::INFINITY;
        for &(d, id) in nn {
            let prof = cache.get(id);
            // Safe range end: the farthest critical value with distance
            // still below d_{k+1}; fall back to the plain Lemma 2 step when
            // the bound is degenerate (ties).
            let beta = match prof.max_level_with_dist_below(dk1) {
                Some(b) if b >= t.value && d < dk1 => b,
                _ => prof.next_critical(t).unwrap_or(1.0),
            };
            let iv = Interval::new(t.value, !t.strict, beta.min(alpha_end), true);
            acc.entry(id).or_default().push(iv);
            alpha_star = alpha_star.min(beta);
        }
        if alpha_star >= alpha_end {
            break;
        }
        t = Threshold::above(alpha_star);
    }
    Ok(acc)
}

fn collect(acc: HashMap<ObjectId, IntervalSet>) -> Vec<RknnItem> {
    let mut items: Vec<RknnItem> = acc
        .into_iter()
        .filter(|(_, set)| !set.is_empty())
        .map(|(id, range)| RknnItem { id, range })
        .collect();
    items.sort_by_key(|i| i.id);
    items
}
