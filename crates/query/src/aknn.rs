//! AKNN search (Section 3): best-first traversal with configurable
//! optimizations.
//!
//! One engine implements the four variants benchmarked in §6.2 as flags:
//!
//! | Variant    | `improved_lower_bound` | `lazy_probe` | `improved_upper_bound` |
//! |------------|------------------------|--------------|------------------------|
//! | `Basic`    | –                      | –            | –                      |
//! | `LB`       | ✓                      | –            | –                      |
//! | `LB-LP`    | ✓                      | ✓            | –                      |
//! | `LB-LP-UB` | ✓                      | ✓            | ✓                      |
//!
//! ### A note on the lazy-probe buffer
//!
//! Algorithm 2 of the paper keeps deferred leaf entries in a second queue
//! `G` and re-inserts probed objects into `G`. Read literally, popping a
//! probed object from `G` into the result can race ahead of a closer
//! candidate still waiting in the main queue `H`. We implement the
//! mechanism with the same bounds and the same probe-saving behaviour, but
//! route probed objects through `H` (where exact distances compete with
//! every remaining lower bound) and confirm deferred entries only through
//! the sound dominance test `d⁺(U) < d⁻(E)` of §3.3 or when `H` is
//! exhausted. Both rules preserve the paper's central property: an object
//! is retrieved from disk only when the buffer overflows ("lazy probe
//! makes all the object retrieval mandatory").

use crate::error::QueryError;
use crate::result::{AknnResult, DistBound, Neighbor};
use crate::stats::QueryStats;
use fuzzy_core::distance::alpha_distance;
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary, Threshold};
use fuzzy_index::{MinKey, NodeAccess, NodeId, NodeView};
use fuzzy_store::ObjectStore;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Optimization switches for the AKNN engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AknnConfig {
    /// §3.2 — use the conservative-line α-cut MBR `M_A(α)*` for `d⁻_α`
    /// instead of the support MBR.
    pub improved_lower_bound: bool,
    /// §3.3 — defer object probes in a buffer of capacity `k − |NN|`.
    pub lazy_probe: bool,
    /// §3.4 — tighten `d⁺_α` with the kernel representative point against
    /// sampled query points.
    pub improved_upper_bound: bool,
    /// Sample size `n` for `Q'_α` (the paper requires `n ≪ |Q_α|`).
    pub query_samples: usize,
    /// Seed for the deterministic query-point sampling.
    pub sample_seed: u64,
}

impl Default for AknnConfig {
    fn default() -> Self {
        Self::lb_lp_ub()
    }
}

impl AknnConfig {
    /// The unoptimized Algorithm 1.
    pub fn basic() -> Self {
        Self {
            improved_lower_bound: false,
            lazy_probe: false,
            improved_upper_bound: false,
            query_samples: 16,
            sample_seed: 0x5EED,
        }
    }

    /// Improved lower bound only.
    pub fn lb() -> Self {
        Self { improved_lower_bound: true, ..Self::basic() }
    }

    /// Improved lower bound + lazy probe.
    pub fn lb_lp() -> Self {
        Self { lazy_probe: true, ..Self::lb() }
    }

    /// All optimizations (the paper's best variant).
    pub fn lb_lp_ub() -> Self {
        Self { improved_upper_bound: true, ..Self::lb_lp() }
    }

    /// Human-readable variant name matching the paper's figures.
    pub fn variant_name(&self) -> &'static str {
        match (self.improved_lower_bound, self.lazy_probe, self.improved_upper_bound) {
            (false, false, false) => "Basic",
            (true, false, false) => "LB",
            (true, true, false) => "LB-LP",
            (true, true, true) => "LB-LP-UB",
            _ => "custom",
        }
    }

    /// All four paper variants, in presentation order.
    pub fn paper_variants() -> [AknnConfig; 4] {
        [Self::basic(), Self::lb(), Self::lb_lp(), Self::lb_lp_ub()]
    }
}

/// One confirmed neighbour with the probed object when available (RKNN
/// refinement needs the object to build distance profiles).
pub(crate) struct FoundNeighbor<const D: usize> {
    pub id: ObjectId,
    pub dist: DistBound,
    pub object: Option<Arc<FuzzyObject<D>>>,
}

pub(crate) struct SearchOutcome<const D: usize> {
    pub neighbors: Vec<FoundNeighbor<D>>,
    pub stats: QueryStats,
}

enum Item<const D: usize> {
    Node(NodeId),
    Entry(ObjectSummary<D>),
    Object(ObjectId, f64, Arc<FuzzyObject<D>>),
}

/// A probe callback: retrieves the object and evaluates its exact
/// α-distance, charging the stats.
type ProbeFn<'f, const D: usize> = dyn FnMut(
        &ObjectSummary<D>,
        &mut QueryStats,
    ) -> Result<(ObjectId, f64, Arc<FuzzyObject<D>>), QueryError>
    + 'f;

/// Deferred leaf entry in the lazy-probe buffer `G`.
struct Deferred<const D: usize> {
    entry: ObjectSummary<D>,
    lo: f64,
    hi: f64,
}

/// Core best-first search, generic over the index backend. `force_exact`
/// probes any bound-confirmed neighbour at the end so every returned
/// distance is exact (the RKNN algorithms need exact distances and the
/// objects themselves).
pub(crate) fn search<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    tree: &A,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
    cfg: &AknnConfig,
    force_exact: bool,
) -> Result<SearchOutcome<D>, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    let start = Instant::now();
    let mut stats = QueryStats::default();

    let q_cut = q.cut_mbr(t).ok_or(QueryError::EmptyQueryCut)?;
    let q_samples: Vec<fuzzy_geom::Point<D>> = if cfg.improved_upper_bound {
        q.sample_cut_indices(t, cfg.query_samples, cfg.sample_seed)
            .into_iter()
            .map(|i| *q.point(i))
            .collect()
    } else {
        Vec::new()
    };

    let entry_lower = |e: &ObjectSummary<D>| -> f64 {
        if cfg.improved_lower_bound {
            e.lower_bound_dist(&q_cut, t)
        } else {
            e.support_mbr.min_dist(&q_cut)
        }
    };
    let entry_upper = |e: &ObjectSummary<D>| -> f64 {
        let geo = if cfg.improved_lower_bound {
            e.upper_bound_dist(&q_cut, t)
        } else {
            e.support_mbr.max_dist(&q_cut)
        };
        if cfg.improved_upper_bound {
            geo.min(e.rep_upper_bound(&q_samples))
        } else {
            geo
        }
    };

    // Costs are charged to the query-local `stats` (never read back from
    // the shared store/tree counters), so concurrent queries over one
    // engine cannot pollute each other's numbers.
    let mut probe = |e: &ObjectSummary<D>,
                     stats: &mut QueryStats|
     -> Result<(ObjectId, f64, Arc<FuzzyObject<D>>), QueryError> {
        let probe = store.probe_traced(e.id)?;
        let obj = probe.object;
        stats.object_accesses += probe.disk_read as u64;
        stats.distance_evals += 1;
        let d = alpha_distance(&obj, q, t).expect(
            "object cut cannot be empty: kernels are non-empty and the query threshold \
             admits the kernel",
        );
        Ok((e.id, d, obj))
    };

    let mut heap: BinaryHeap<MinKey<Item<D>>> = BinaryHeap::new();
    heap.push(MinKey { key: tree.root_mbr().min_dist(&q_cut), item: Item::Node(tree.root_id()) });
    let mut buffer: Vec<Deferred<D>> = Vec::new(); // the paper's G
    let mut out: Vec<FoundNeighbor<D>> = Vec::with_capacity(k);

    // Evict the most promising deferred entry: probe it and let its exact
    // distance compete in H.
    let evict = |buffer: &mut Vec<Deferred<D>>,
                 heap: &mut BinaryHeap<MinKey<Item<D>>>,
                 stats: &mut QueryStats,
                 probe: &mut ProbeFn<'_, D>|
     -> Result<(), QueryError> {
        let (mut best, mut best_key) = (0usize, f64::INFINITY);
        for (i, d) in buffer.iter().enumerate() {
            if d.lo < best_key {
                best_key = d.lo;
                best = i;
            }
        }
        let victim = buffer.swap_remove(best);
        let (id, d, obj) = probe(&victim.entry, stats)?;
        heap.push(MinKey { key: d, item: Item::Object(id, d, obj) });
        Ok(())
    };

    while out.len() < k {
        let Some(MinKey { key, item }) = heap.pop() else {
            // H exhausted: everything still deferred is confirmed
            // (|G| ≤ k − |NN| by invariant). Deterministic order: by lower
            // bound, then id.
            buffer.sort_by(|a, b| a.lo.total_cmp(&b.lo).then(a.entry.id.cmp(&b.entry.id)));
            for d in buffer.drain(..) {
                out.push(FoundNeighbor {
                    id: d.entry.id,
                    dist: DistBound::Bounded { lo: d.lo, hi: d.hi },
                    object: None,
                });
            }
            break;
        };
        match item {
            Item::Node(id) => {
                let read = tree.read_node(id)?;
                stats.node_accesses += 1;
                stats.node_disk_reads += read.disk_read as u64;
                match read.view() {
                    NodeView::Nodes(kids) => {
                        for c in kids {
                            heap.push(MinKey {
                                key: c.mbr.min_dist(&q_cut),
                                item: Item::Node(c.id),
                            });
                        }
                    }
                    NodeView::Entries(entries) => {
                        for e in entries {
                            stats.bound_evals += 1;
                            heap.push(MinKey { key: entry_lower(e), item: Item::Entry(*e) });
                        }
                    }
                }
            }
            Item::Entry(e) => {
                if !cfg.lazy_probe {
                    let (id, d, obj) = probe(&e, &mut stats)?;
                    heap.push(MinKey { key: d, item: Item::Object(id, d, obj) });
                } else {
                    // §3.3: any buffered U with d⁺(U) < d⁻(E) is dominated
                    // by everything left in H and fits in the remaining
                    // slots together with the rest of G — confirm without
                    // probing.
                    let mut i = 0;
                    while i < buffer.len() && out.len() < k {
                        if buffer[i].hi < key {
                            let u = buffer.swap_remove(i);
                            out.push(FoundNeighbor {
                                id: u.entry.id,
                                dist: DistBound::Bounded { lo: u.lo, hi: u.hi },
                                object: None,
                            });
                        } else {
                            i += 1;
                        }
                    }
                    if out.len() >= k {
                        break;
                    }
                    stats.bound_evals += 1;
                    buffer.push(Deferred { entry: e, lo: key, hi: entry_upper(&e) });
                    while buffer.len() > k - out.len() {
                        evict(&mut buffer, &mut heap, &mut stats, &mut probe)?;
                    }
                }
            }
            Item::Object(id, d, obj) => {
                // Make room first: accepting the object shrinks the buffer
                // capacity, and a full buffer might hide a closer candidate.
                while !buffer.is_empty() && buffer.len() > k - out.len() - 1 {
                    evict(&mut buffer, &mut heap, &mut stats, &mut probe)?;
                }
                // Eviction may have pushed a closer object into H; re-check.
                if heap.peek().is_some_and(|top| top.key < d) {
                    heap.push(MinKey { key: d, item: Item::Object(id, d, obj) });
                    continue;
                }
                out.push(FoundNeighbor { id, dist: DistBound::Exact(d), object: Some(obj) });
            }
        }
    }

    if force_exact {
        for n in &mut out {
            if n.object.is_none() {
                let probe = store.probe_traced(n.id)?;
                let obj = probe.object;
                stats.object_accesses += probe.disk_read as u64;
                stats.distance_evals += 1;
                let d = alpha_distance(&obj, q, t).expect("non-empty cut for confirmed neighbour");
                n.dist = DistBound::Exact(d);
                n.object = Some(obj);
            }
        }
    }

    stats.wall = start.elapsed();
    Ok(SearchOutcome { neighbors: out, stats })
}

/// Public AKNN entry point used by [`crate::QueryEngine`].
pub(crate) fn aknn_at<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    tree: &A,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
    cfg: &AknnConfig,
) -> Result<AknnResult, QueryError> {
    let outcome = search(tree, store, q, k, t, cfg, false)?;
    Ok(AknnResult {
        neighbors: outcome
            .neighbors
            .into_iter()
            .map(|n| Neighbor { id: n.id, dist: n.dist })
            .collect(),
        stats: outcome.stats,
    })
}
