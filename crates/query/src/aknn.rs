//! AKNN search (Section 3): best-first traversal with configurable
//! optimizations.
//!
//! One engine implements the four variants benchmarked in §6.2 as flags:
//!
//! | Variant    | `improved_lower_bound` | `lazy_probe` | `improved_upper_bound` |
//! |------------|------------------------|--------------|------------------------|
//! | `Basic`    | –                      | –            | –                      |
//! | `LB`       | ✓                      | –            | –                      |
//! | `LB-LP`    | ✓                      | ✓            | –                      |
//! | `LB-LP-UB` | ✓                      | ✓            | ✓                      |
//!
//! ### Hot-path layout
//!
//! The whole traversal works in **squared** distances: heap keys, deferred
//! lower/upper bounds and probe seeds are all squared, and the single
//! `sqrt` is taken when a distance leaves the search (a reported
//! neighbour). Leaf entries are appended once to a per-query arena (their
//! Eq. 2 approximate cut MBR computed a single time and reused by the
//! lower *and* upper bound), and heap items carry a `u32` arena index
//! instead of a by-value [`ObjectSummary`]. All transient state lives in a
//! reusable [`QueryScratch`], so steady-state queries allocate nothing.
//!
//! ### Metric-generic pruning
//!
//! The traversal is generic over [`Metric`]: node and entry rectangles are
//! scored through [`Metric::min_box_dist_sq`]/[`Metric::max_box_dist_sq`],
//! the §3.4 representative bound through [`Metric::dist_sq`], and exact
//! probes through [`Metric::alpha_distance_sq_bounded`]. Under
//! [`fuzzy_core::L2`] every hook inlines to the pre-seam specialized call,
//! so answers and counters are byte-identical to the L2-only engine
//! (proven by the differential and shard-determinism suites); metrics
//! without rectangle geometry degrade to sound `0`/`+∞` box bounds and
//! rely on the M-tree backend (`fuzzy_index::mtree`) for real pruning.
//!
//! ### Bound-seeded probes
//!
//! Every object probe seeds [`Metric::alpha_distance_sq_bounded`] with the
//! tightest sound bound available: the entry's own upper bound `d⁺(E)`
//! (inflated by a few ulps so the exact result is preserved bitwise) and
//! the current k-th best upper bound τ over the *live* candidates. A probe
//! that comes back `None` under the τ seed is dominated — at least `k`
//! live candidates are provably no farther than τ — and is discarded
//! without ever finishing its dual-tree descent (the documented
//! `None`-on-seed contract of the kernel).
//!
//! ### A note on the lazy-probe buffer
//!
//! Algorithm 2 of the paper keeps deferred leaf entries in a second queue
//! `G` and re-inserts probed objects into `G`. Read literally, popping a
//! probed object from `G` into the result can race ahead of a closer
//! candidate still waiting in the main queue `H`. We implement the
//! mechanism with the same bounds and the same probe-saving behaviour, but
//! route probed objects through `H` (where exact distances compete with
//! every remaining lower bound) and confirm deferred entries only through
//! the sound dominance test `d⁺(U) < d⁻(E)` of §3.3 or when `H` is
//! exhausted. Both rules preserve the paper's central property: an object
//! is retrieved from disk only when the buffer overflows ("lazy probe
//! makes all the object retrieval mandatory"). `G` is kept ordered by
//! lower bound (descending, ties latest-first), so evicting the most
//! promising entry is an O(1) tail pop instead of the linear scan of the
//! original implementation.

use crate::error::QueryError;
use crate::result::{AknnResult, DistBound, Neighbor};
use crate::shard::SharedTau;
use crate::stats::QueryStats;
use fuzzy_core::metric::Metric;
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary, Threshold};
use fuzzy_geom::{Mbr, Point};
use fuzzy_index::{MinKey, NodeAccess, NodeId, NodeView};
use fuzzy_store::ObjectStore;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Optimization switches for the AKNN engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AknnConfig {
    /// §3.2 — use the conservative-line α-cut MBR `M_A(α)*` for `d⁻_α`
    /// instead of the support MBR.
    pub improved_lower_bound: bool,
    /// §3.3 — defer object probes in a buffer of capacity `k − |NN|`.
    pub lazy_probe: bool,
    /// §3.4 — tighten `d⁺_α` with the kernel representative point against
    /// sampled query points.
    pub improved_upper_bound: bool,
    /// Seed every exact α-distance evaluation with the entry's own upper
    /// bound and the running k-th best upper bound, so dominated objects
    /// terminate their descent early. Changes no answers; on by default.
    pub seeded_probes: bool,
    /// Sample size `n` for `Q'_α` (the paper requires `n ≪ |Q_α|`).
    pub query_samples: usize,
    /// Seed for the deterministic query-point sampling.
    pub sample_seed: u64,
    /// Abort the query with [`QueryError::DeadlineExceeded`] once this
    /// instant passes. Checked at traversal expansion points (node reads,
    /// object probes, refinement steps), so an overdue query stops burning
    /// its worker within one expansion instead of running to completion.
    /// `None` (the default) never expires. The deadline changes which
    /// queries *finish*, never the answers of those that do.
    pub deadline: Option<Instant>,
}

impl Default for AknnConfig {
    fn default() -> Self {
        Self::lb_lp_ub()
    }
}

impl AknnConfig {
    /// The unoptimized Algorithm 1.
    pub fn basic() -> Self {
        Self {
            improved_lower_bound: false,
            lazy_probe: false,
            improved_upper_bound: false,
            seeded_probes: true,
            query_samples: 16,
            sample_seed: 0x5EED,
            deadline: None,
        }
    }

    /// Improved lower bound only.
    pub fn lb() -> Self {
        Self { improved_lower_bound: true, ..Self::basic() }
    }

    /// Improved lower bound + lazy probe.
    pub fn lb_lp() -> Self {
        Self { lazy_probe: true, ..Self::lb() }
    }

    /// All optimizations (the paper's best variant).
    pub fn lb_lp_ub() -> Self {
        Self { improved_upper_bound: true, ..Self::lb_lp() }
    }

    /// This configuration with probe seeding disabled (every probe runs an
    /// unbounded evaluation, as in the original implementation). Used by
    /// the equivalence tests; answers are identical either way.
    pub fn unseeded(self) -> Self {
        Self { seeded_probes: false, ..self }
    }

    /// This configuration with a deadline: the query aborts with
    /// [`QueryError::DeadlineExceeded`] at the first expansion point past
    /// `deadline`. The server derives one from each request's
    /// `deadline_ms`; `None` clears it.
    pub fn with_deadline(self, deadline: Option<Instant>) -> Self {
        Self { deadline, ..self }
    }

    /// Human-readable variant name matching the paper's figures.
    pub fn variant_name(&self) -> &'static str {
        match (self.improved_lower_bound, self.lazy_probe, self.improved_upper_bound) {
            (false, false, false) => "Basic",
            (true, false, false) => "LB",
            (true, true, false) => "LB-LP",
            (true, true, true) => "LB-LP-UB",
            _ => "custom",
        }
    }

    /// All four paper variants, in presentation order.
    pub fn paper_variants() -> [AknnConfig; 4] {
        [Self::basic(), Self::lb(), Self::lb_lp(), Self::lb_lp_ub()]
    }
}

/// One confirmed neighbour with the probed object when available (RKNN
/// refinement needs the object to build distance profiles).
pub(crate) struct FoundNeighbor<const D: usize> {
    pub id: ObjectId,
    pub dist: DistBound,
    pub object: Option<Arc<FuzzyObject<D>>>,
}

pub(crate) struct SearchOutcome<const D: usize> {
    pub neighbors: Vec<FoundNeighbor<D>>,
    pub stats: QueryStats,
}

/// How [`search`] terminates and what it returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SearchMode {
    /// The paper's Algorithm 1/2: confirm `k` neighbours, exact or
    /// bound-confirmed (`DistBound::Bounded`), in confirmation order.
    Lazy,
    /// `Lazy`, then probe every bound-confirmed survivor so all returned
    /// distances are exact with the decoded object attached (RKNN and
    /// the canonical single-tree reference need this).
    Exact,
    /// Scatter phase of a sharded query: collect **every** candidate
    /// surviving τ pruning, bounds only, never probing the store. The
    /// gather phase ([`resolve_pool`]) probes the pooled candidates in
    /// global lower-bound order, so S shards spend their object probes
    /// exactly where a single tree would.
    Collect,
}

enum Item<const D: usize> {
    Node(NodeId),
    /// Index into the per-query entry arena ([`QueryScratch::entries`]).
    Entry(u32),
    /// A probed object with its exact **squared** α-distance.
    Object(ObjectId, f64, Arc<FuzzyObject<D>>),
}

/// Arena slot for a leaf entry: the summary plus the rectangle its bounds
/// are measured against (the Eq. 2 approximate cut MBR under `LB`,
/// otherwise the support MBR) — computed once, shared by `d⁻` and `d⁺`.
struct EntryState<const D: usize> {
    summary: ObjectSummary<D>,
    bound_mbr: Mbr<D>,
}

/// Deferred entry in the lazy-probe buffer `G`: arena index plus squared
/// lower/upper bounds. The buffer is kept **descending** by `lo_sq` with
/// equal bounds ordered latest-first, so the eviction victim — the
/// smallest lower bound, first-inserted among ties — is always the tail
/// element: a true O(1) `Vec::pop`.
struct Deferred {
    entry: u32,
    lo_sq: f64,
    hi_sq: f64,
}

/// Reusable per-query transient state. One instance per worker (or per
/// call) makes the steady-state search allocation-free: the heap, the
/// lazy-probe buffer, the entry arena, the query-sample vector and the
/// seeding bookkeeping all retain their capacity across queries.
///
/// Obtain one with [`QueryScratch::new`] and pass it to the
/// `*_with_scratch` engine entry points; the convenience entry points
/// allocate a fresh one per call.
pub struct QueryScratch<const D: usize> {
    heap: BinaryHeap<MinKey<Item<D>>>,
    buffer: Vec<Deferred>,
    entries: Vec<EntryState<D>>,
    samples: Vec<Point<D>>,
    seeds: SeedTracker,
}

impl<const D: usize> Default for QueryScratch<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> QueryScratch<D> {
    /// Empty scratch; capacity grows with use and is retained.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            buffer: Vec::new(),
            entries: Vec::new(),
            samples: Vec::new(),
            seeds: SeedTracker::default(),
        }
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.buffer.clear();
        self.entries.clear();
        self.samples.clear();
        self.seeds.reset();
    }

    /// The seed tracker, for crate-internal probe loops (the approximate
    /// resolution reuses it across queries like the exact search does).
    pub(crate) fn seeds_mut(&mut self) -> &mut SeedTracker {
        &mut self.seeds
    }
}

/// Probe-seed bookkeeping: an upper bound (squared) per *live* candidate
/// — buffered entries, probed objects still in flight and confirmed
/// results — whose k-th smallest value is the seed τ. τ is cached:
/// inserting a bound at or above the cached τ cannot change the k-th
/// smallest, so only inserts below it and removals trigger a recompute.
/// This keeps the bookkeeping O(1) amortized per candidate instead of a
/// full selection per probe.
#[derive(Default)]
pub(crate) struct SeedTracker {
    live_ub: HashMap<ObjectId, f64>,
    tau_tmp: Vec<f64>,
    cached_tau: f64,
    dirty: bool,
}

impl SeedTracker {
    pub(crate) fn reset(&mut self) {
        self.live_ub.clear();
        self.tau_tmp.clear();
        self.cached_tau = f64::INFINITY;
        self.dirty = true;
    }

    pub(crate) fn insert(&mut self, id: ObjectId, ub_sq: f64) {
        let old = self.live_ub.insert(id, ub_sq);
        // A new/changed bound below the cached τ (or a replaced bound that
        // was counted) can move the k-th smallest; at-or-above inserts
        // cannot.
        if ub_sq < self.cached_tau || old.is_some_and(|o| o <= self.cached_tau) {
            self.dirty = true;
        }
    }

    pub(crate) fn remove(&mut self, id: &ObjectId) {
        if self.live_ub.remove(id).is_some() {
            self.dirty = true;
        }
    }

    /// The current τ (squared): the k-th smallest live upper bound, or
    /// `+∞` when fewer than `k` candidates are live. Sound because every
    /// tracked bound belongs to a distinct candidate still guaranteed to
    /// reach the result competition.
    pub(crate) fn tau_sq(&mut self, k: usize) -> f64 {
        if self.live_ub.len() < k {
            return f64::INFINITY;
        }
        if self.dirty {
            self.tau_tmp.clear();
            self.tau_tmp.extend(self.live_ub.values().copied());
            let (_, kth, _) = self.tau_tmp.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
            self.cached_tau = *kth;
            self.dirty = false;
        }
        self.cached_tau
    }
}

/// Abort with [`QueryError::DeadlineExceeded`] once `deadline` has passed.
/// Called at expansion points: each node read of the best-first search,
/// each object probe of the RKNN candidate collection, and each critical-
/// probability step of the refinement loops. Those are the units of work
/// between which a traversal can soundly stop, and each is coarse enough
/// (a page decode, a distance evaluation) that the `Instant::now()` call
/// is noise.
#[inline]
pub(crate) fn check_deadline(deadline: Option<Instant>) -> Result<(), QueryError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(QueryError::DeadlineExceeded),
        _ => Ok(()),
    }
}

/// Inflate a squared upper bound by a few ulps so that seeding an exact
/// evaluation with an object's *own* conservative bound can never lose the
/// witness pair to floating-point rounding (the kernel's pruning compare
/// is strict).
#[inline]
pub(crate) fn inflate_sq(hi_sq: f64) -> f64 {
    hi_sq * (1.0 + 1e-12) + f64::MIN_POSITIVE
}

/// What a probe learned about an object.
pub(crate) enum Probed<const D: usize> {
    /// Exact **squared** α-distance and the decoded object.
    Exact(f64, Arc<FuzzyObject<D>>),
    /// The probe was cut off by the τ seed: at least `k` live candidates
    /// are no farther, so the object cannot enter the result.
    Dominated,
}

/// Retrieve one object and evaluate its exact α-distance, charging the
/// stats. `own_hi_sq` is the entry's own (inflated) upper bound when known
/// and `tau_sq` the current k-th best upper bound — their minimum seeds
/// the evaluation. τ is inflated by a few ulps before use, so a `None`
/// under the τ seed implies the distance is **strictly** greater than τ:
/// domination can never discard a candidate that exactly ties the k-th
/// distance, and seeded answers match unseeded ones even on ties (e.g.
/// duplicated objects). This single function serves the eager path, the
/// lazy-probe eviction and the `force_exact` tail (the latter passes `+∞`
/// seeds), so the probe accounting cannot diverge between them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_exact<M: Metric<D> + ?Sized, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    store: &S,
    q: &FuzzyObject<D>,
    t: Threshold,
    id: ObjectId,
    own_hi_sq: f64,
    tau_sq: f64,
    stats: &mut QueryStats,
) -> Result<Probed<D>, QueryError> {
    let probe = store.probe_traced(id)?;
    let obj = probe.object;
    stats.object_accesses += probe.disk_read as u64;
    stats.distance_evals += 1;
    let tau_eff = if tau_sq.is_finite() { inflate_sq(tau_sq) } else { f64::INFINITY };
    let seed_sq = own_hi_sq.min(tau_eff);
    match metric.alpha_distance_sq_bounded(&obj, q, t, seed_sq) {
        Some(d_sq) => Ok(Probed::Exact(d_sq, obj)),
        None if tau_eff <= own_hi_sq && tau_eff.is_finite() => Ok(Probed::Dominated),
        None => {
            // The object's own conservative bound failed by an ulp (only
            // possible through floating-point degeneracies, or because no
            // seed was available and the cut is empty). Fall back to the
            // unbounded evaluation; still one probe, one evaluation.
            let d_sq = metric.alpha_distance_sq_bounded(&obj, q, t, f64::INFINITY).expect(
                "object cut cannot be empty: kernels are non-empty and the query threshold \
                 admits the kernel",
            );
            Ok(Probed::Exact(d_sq, obj))
        }
    }
}

/// Core best-first search, generic over the index backend. `force_exact`
/// probes any bound-confirmed neighbour at the end so every returned
/// distance is exact (the RKNN algorithms need exact distances and the
/// objects themselves).
///
/// `shared` plugs the search into a scatter-gather fan-out
/// ([`crate::shard`]): when `Some`, the search *reads* the global
/// k-th-best upper bound τ published by sibling shard searches — pruning
/// whole subtrees, deferred entries and object probes that are provably
/// outside the **global** top-k — and *publishes* its own k-th-best live
/// upper bound back. Every prune compares strictly against an
/// ulp-inflated τ, so exact ties are never discarded and the merged
/// scatter-gather answer is byte-identical to a single-tree search over
/// the union. `None` (every non-sharded caller) is bit-identical legacy
/// behaviour.
///
/// `carry` holds already-confirmed competitors from sibling shards
/// (disjoint ids, exact **squared** distances). They join the live seed
/// set, so the running k-th-best bound counts cross-shard candidates
/// individually — the same bound a single-tree search over the union
/// would hold — instead of only through the scalar τ. Pass `&[]` when
/// not scatter-gathering.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search<M: Metric<D>, A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    tree: &A,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
    cfg: &AknnConfig,
    mode: SearchMode,
    scratch: &mut QueryScratch<D>,
    shared: Option<&SharedTau>,
    carry: &[(ObjectId, f64)],
) -> Result<SearchOutcome<D>, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    let collect = mode == SearchMode::Collect;
    let start = Instant::now();
    let mut stats = QueryStats::default();

    scratch.reset();
    let QueryScratch { heap, buffer, entries, samples, seeds } = scratch;

    let q_cut = q.cut_mbr(t).ok_or(QueryError::EmptyQueryCut)?;
    // Carried competitors are live for the whole search: each is a real
    // object already confirmed at an exact distance, so counting it
    // toward the k-th-best bound is always sound. Publish the tightened
    // bound immediately — sibling-shard knowledge prunes from pop one.
    if cfg.seeded_probes && !carry.is_empty() {
        for &(id, d_sq) in carry {
            seeds.insert(id, d_sq);
        }
        if let Some(sh) = shared {
            sh.observe(seeds.tau_sq(k));
        }
    }
    if cfg.improved_upper_bound {
        samples.extend(
            q.sample_cut_indices(t, cfg.query_samples, cfg.sample_seed)
                .into_iter()
                .map(|i| *q.point(i)),
        );
    }

    // Squared upper bound of an arena entry (`d⁺` of §3.3/§3.4).
    let entry_hi_sq = |st: &EntryState<D>| -> f64 {
        let geo = metric.max_box_dist_sq(&st.bound_mbr, &q_cut);
        if cfg.improved_upper_bound {
            geo.min(st.summary.rep_upper_bound_sq_in(metric, samples))
        } else {
            geo
        }
    };

    heap.push(MinKey {
        key: metric.min_box_dist_sq(&tree.root_mbr(), &q_cut),
        item: Item::Node(tree.root_id()),
    });
    let mut out: Vec<FoundNeighbor<D>> = Vec::with_capacity(k);

    // Costs are charged to the query-local `stats` (never read back from
    // the shared store/tree counters), so concurrent queries over one
    // engine cannot pollute each other's numbers. `Collect` runs until
    // τ pruning or exhaustion empties H — it bounds candidates, it does
    // not count confirmations.
    while collect || out.len() < k {
        let Some(MinKey { key, item }) = heap.pop() else {
            // H exhausted: everything still deferred is confirmed
            // (|G| ≤ k − |NN| by invariant; unbounded in `Collect`, where
            // the gather phase arbitrates). Deterministic order: by lower
            // bound, then id.
            buffer.sort_by(|a, b| {
                a.lo_sq.total_cmp(&b.lo_sq).then(
                    entries[a.entry as usize].summary.id.cmp(&entries[b.entry as usize].summary.id),
                )
            });
            for d in buffer.drain(..) {
                out.push(FoundNeighbor {
                    id: entries[d.entry as usize].summary.id,
                    dist: DistBound::Bounded { lo: d.lo_sq.sqrt(), hi: d.hi_sq.sqrt() },
                    object: None,
                });
            }
            break;
        };
        // Scatter-gather pruning: pops ascend and the shared τ only
        // shrinks, so the first pop beyond the (inflated) global bound
        // proves this item and everything left in H strictly farther than
        // k objects somewhere in the forest — none of it can reach the
        // merged top-k. Clear H, drop the provably-out deferred entries,
        // and let the next iteration drain the survivors.
        let mut tau_g = shared.map_or(f64::INFINITY, SharedTau::get);
        if collect && cfg.seeded_probes {
            // Collect has no local confirmations to stop on; the running
            // k-th-best live bound (which includes the carry) is what
            // bounds the traversal — with or without sibling shards.
            tau_g = tau_g.min(seeds.tau_sq(k));
        }
        if tau_g.is_finite() && key > inflate_sq(tau_g) {
            heap.clear();
            let bound = inflate_sq(tau_g);
            buffer.retain(|d| {
                if d.lo_sq > bound {
                    seeds.remove(&entries[d.entry as usize].summary.id);
                    false
                } else {
                    true
                }
            });
            continue;
        }
        match item {
            Item::Node(id) => {
                check_deadline(cfg.deadline)?;
                let read = tree.read_node(id)?;
                stats.node_accesses += 1;
                stats.node_disk_reads += read.disk_read as u64;
                match read.view() {
                    NodeView::Nodes(kids) => {
                        for c in kids {
                            heap.push(MinKey {
                                key: metric.min_box_dist_sq(&c.mbr, &q_cut),
                                item: Item::Node(c.id),
                            });
                        }
                    }
                    NodeView::Entries(leaf) => {
                        for e in leaf {
                            stats.bound_evals += 1;
                            let bound_mbr = if cfg.improved_lower_bound {
                                e.approx_cut_mbr(t)
                            } else {
                                e.support_mbr
                            };
                            let lo_sq = metric.min_box_dist_sq(&bound_mbr, &q_cut);
                            let idx = entries.len() as u32;
                            entries.push(EntryState { summary: *e, bound_mbr });
                            heap.push(MinKey { key: lo_sq, item: Item::Entry(idx) });
                        }
                    }
                }
            }
            Item::Entry(idx) => {
                check_deadline(cfg.deadline)?;
                let id = entries[idx as usize].summary.id;
                if collect {
                    // Bound the candidate, track it, move on — the store
                    // is never touched in the scatter phase.
                    stats.bound_evals += 1;
                    let hi_sq = entry_hi_sq(&entries[idx as usize]);
                    if cfg.seeded_probes {
                        seeds.insert(id, hi_sq);
                        if let Some(sh) = shared {
                            sh.observe(seeds.tau_sq(k));
                        }
                    }
                    let pos = buffer.partition_point(|d| d.lo_sq > key);
                    buffer.insert(pos, Deferred { entry: idx, lo_sq: key, hi_sq });
                } else if !cfg.lazy_probe {
                    let mut tau_sq =
                        if cfg.seeded_probes { seeds.tau_sq(k) } else { f64::INFINITY };
                    if let Some(sh) = shared {
                        tau_sq = tau_sq.min(sh.get());
                    }
                    match probe_exact(metric, store, q, t, id, f64::INFINITY, tau_sq, &mut stats)? {
                        Probed::Exact(d_sq, obj) => {
                            if cfg.seeded_probes {
                                seeds.insert(id, d_sq);
                                if let Some(sh) = shared {
                                    sh.observe(seeds.tau_sq(k));
                                }
                            }
                            heap.push(MinKey { key: d_sq, item: Item::Object(id, d_sq, obj) });
                        }
                        Probed::Dominated => {}
                    }
                } else {
                    // §3.3: any buffered U with d⁺(U) < d⁻(E) is dominated
                    // by everything left in H and fits in the remaining
                    // slots together with the rest of G — confirm without
                    // probing.
                    let mut i = 0;
                    while i < buffer.len() && out.len() < k {
                        if buffer[i].hi_sq < key {
                            let u = buffer.remove(i);
                            out.push(FoundNeighbor {
                                id: entries[u.entry as usize].summary.id,
                                dist: DistBound::Bounded { lo: u.lo_sq.sqrt(), hi: u.hi_sq.sqrt() },
                                object: None,
                            });
                        } else {
                            i += 1;
                        }
                    }
                    if out.len() >= k {
                        break;
                    }
                    stats.bound_evals += 1;
                    let hi_sq = entry_hi_sq(&entries[idx as usize]);
                    if cfg.seeded_probes {
                        seeds.insert(id, hi_sq);
                        if let Some(sh) = shared {
                            sh.observe(seeds.tau_sq(k));
                        }
                    }
                    // Descending order, equal bounds latest-first: later
                    // duplicates land at the head of their equal run, so
                    // the tail pop evicts first-inserted ties first.
                    let pos = buffer.partition_point(|d| d.lo_sq > key);
                    buffer.insert(pos, Deferred { entry: idx, lo_sq: key, hi_sq });
                    while buffer.len() > k - out.len() {
                        evict(
                            heap, buffer, entries, seeds, metric, store, q, t, k, cfg, shared,
                            &mut stats,
                        )?;
                    }
                }
            }
            Item::Object(id, d_sq, obj) => {
                // Make room first: accepting the object shrinks the buffer
                // capacity, and a full buffer might hide a closer candidate.
                while !buffer.is_empty() && buffer.len() > k - out.len() - 1 {
                    evict(
                        heap, buffer, entries, seeds, metric, store, q, t, k, cfg, shared,
                        &mut stats,
                    )?;
                }
                // Eviction may have pushed a closer object into H; re-check.
                if heap.peek().is_some_and(|top| top.key < d_sq) {
                    heap.push(MinKey { key: d_sq, item: Item::Object(id, d_sq, obj) });
                    continue;
                }
                out.push(FoundNeighbor {
                    id,
                    dist: DistBound::Exact(d_sq.sqrt()),
                    object: Some(obj),
                });
            }
        }
    }

    if mode == SearchMode::Exact {
        if let Some(sh) = shared {
            // Scatter-gather tail: each bound-only leftover is checked
            // against the global τ *before* its store probe — by lower
            // bound (free) or by a τ-seeded probe (dominated ⇒ strictly
            // farther than k objects in the forest). Either way a dropped
            // candidate can never reach the merged top-k, and survivors
            // come back exact so shard answers merge deterministically.
            let mut exact = Vec::with_capacity(out.len());
            for mut n in out {
                if n.object.is_none() {
                    let tau_g = sh.get();
                    let cut = if tau_g.is_finite() { inflate_sq(tau_g) } else { f64::INFINITY };
                    let lo = n.dist.lo();
                    if lo * lo > cut {
                        continue;
                    }
                    let hi = n.dist.hi();
                    let own = if hi.is_finite() { inflate_sq(hi * hi) } else { f64::INFINITY };
                    match probe_exact(metric, store, q, t, n.id, own, tau_g, &mut stats)? {
                        Probed::Exact(d_sq, obj) => {
                            n.dist = DistBound::Exact(d_sq.sqrt());
                            n.object = Some(obj);
                        }
                        Probed::Dominated => continue,
                    }
                }
                exact.push(n);
            }
            out = exact;
        } else {
            for n in &mut out {
                if n.object.is_none() {
                    match probe_exact(
                        metric,
                        store,
                        q,
                        t,
                        n.id,
                        f64::INFINITY,
                        f64::INFINITY,
                        &mut stats,
                    )? {
                        Probed::Exact(d_sq, obj) => {
                            n.dist = DistBound::Exact(d_sq.sqrt());
                            n.object = Some(obj);
                        }
                        Probed::Dominated => unreachable!("unseeded probes cannot be dominated"),
                    }
                }
            }
        }
    }

    // Release per-query state now rather than at the next query: a
    // long-lived worker scratch must not pin the decoded objects held by
    // leftover heap items (capacity is retained, contents dropped).
    heap.clear();
    buffer.clear();
    entries.clear();
    samples.clear();
    seeds.reset();

    stats.wall = start.elapsed();
    Ok(SearchOutcome { neighbors: out, stats })
}

/// Evict the most promising deferred entry (the buffer tail, since `G` is
/// kept descending by lower bound): probe it and let its exact distance
/// compete in H. A probe dominated under the τ seed is discarded — its
/// live-bound entry was removed *before* τ was computed, so τ counts `k`
/// other candidates.
#[allow(clippy::too_many_arguments)]
fn evict<M: Metric<D>, S: ObjectStore<D>, const D: usize>(
    heap: &mut BinaryHeap<MinKey<Item<D>>>,
    buffer: &mut Vec<Deferred>,
    entries: &[EntryState<D>],
    seeds: &mut SeedTracker,
    metric: &M,
    store: &S,
    q: &FuzzyObject<D>,
    t: Threshold,
    k: usize,
    cfg: &AknnConfig,
    shared: Option<&SharedTau>,
    stats: &mut QueryStats,
) -> Result<(), QueryError> {
    let victim = buffer.pop().expect("evict called on a non-empty buffer");
    let id = entries[victim.entry as usize].summary.id;
    let (own_hi_sq, mut tau_sq) = if cfg.seeded_probes {
        seeds.remove(&id);
        (inflate_sq(victim.hi_sq), seeds.tau_sq(k))
    } else {
        (f64::INFINITY, f64::INFINITY)
    };
    if let Some(sh) = shared {
        tau_sq = tau_sq.min(sh.get());
    }
    match probe_exact(metric, store, q, t, id, own_hi_sq, tau_sq, stats)? {
        Probed::Exact(d_sq, obj) => {
            if cfg.seeded_probes {
                seeds.insert(id, d_sq);
                if let Some(sh) = shared {
                    sh.observe(seeds.tau_sq(k));
                }
            }
            heap.push(MinKey { key: d_sq, item: Item::Object(id, d_sq, obj) });
        }
        Probed::Dominated => {}
    }
    Ok(())
}

/// Resolve a scatter-gather candidate pool to exact distances — the
/// gather half of [`crate::shard::sharded_search`]. The pool is the
/// union of per-shard top-k lists, so every global top-k member is in
/// it; candidates are probed in ascending lower-bound order (ties by
/// id) — the order a single-tree best-first search drains its heap in —
/// under one seed tracker holding every live candidate's tightest
/// bound. A candidate provably behind `k` others is dropped for free
/// (by lower bound) or by a τ-seeded probe; every comparison goes
/// through the ulp-inflated τ, so exact ties survive and the canonical
/// (distance, id) top-k stays byte-identical to a single-tree exact
/// search over the union. Survivors all carry exact distances and the
/// decoded object; the caller sorts and truncates.
pub(crate) fn resolve_pool<M: Metric<D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
    mut pool: Vec<FoundNeighbor<D>>,
    stats: &mut QueryStats,
) -> Result<Vec<FoundNeighbor<D>>, QueryError> {
    let mut seeds = SeedTracker::default();
    seeds.reset();
    for n in &pool {
        let hi = n.dist.hi();
        seeds.insert(n.id, if hi.is_finite() { hi * hi } else { f64::INFINITY });
    }
    pool.sort_by(|a, b| a.dist.lo().total_cmp(&b.dist.lo()).then(a.id.cmp(&b.id)));
    let mut out: Vec<FoundNeighbor<D>> = Vec::with_capacity(k);
    for mut n in pool {
        if n.object.is_some() {
            // Probed during the scatter phase; its seed is already its
            // exact distance.
            out.push(n);
            continue;
        }
        // Mirror `evict`: drop the candidate's own bound *before*
        // computing τ, so τ counts `k` other live candidates.
        seeds.remove(&n.id);
        let tau_sq = seeds.tau_sq(k);
        let lo = n.dist.lo();
        if tau_sq.is_finite() && lo * lo > inflate_sq(tau_sq) {
            continue;
        }
        let hi = n.dist.hi();
        let own = if hi.is_finite() { inflate_sq(hi * hi) } else { f64::INFINITY };
        match probe_exact(metric, store, q, t, n.id, own, tau_sq, stats)? {
            Probed::Exact(d_sq, obj) => {
                seeds.insert(n.id, d_sq);
                n.dist = DistBound::Exact(d_sq.sqrt());
                n.object = Some(obj);
                out.push(n);
            }
            Probed::Dominated => {}
        }
    }
    Ok(out)
}

/// Public AKNN entry point used by [`crate::QueryEngine`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn aknn_at<M: Metric<D>, A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    tree: &A,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
    cfg: &AknnConfig,
    scratch: &mut QueryScratch<D>,
) -> Result<AknnResult, QueryError> {
    let outcome = search(metric, tree, store, q, k, t, cfg, SearchMode::Lazy, scratch, None, &[])?;
    Ok(AknnResult {
        neighbors: outcome
            .neighbors
            .into_iter()
            .map(|n| Neighbor { id: n.id, dist: n.dist })
            .collect(),
        stats: outcome.stats,
    })
}
