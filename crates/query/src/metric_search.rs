//! Metric-space AKNN over the covering-ball M-tree.
//!
//! The rectangle engine ([`crate::aknn`]) prunes with `MinDist` to
//! coordinate boxes — meaningless under a metric like graph shortest-path
//! distance, where straight-line geometry says nothing about reachable
//! cost. This module is the general-metric twin: the same best-first /
//! threshold-τ discipline, but every bound is derived from the triangle
//! inequality alone, so it is sound for **any** [`Metric`].
//!
//! The bound chain: let `q_rep` be the query's representative and
//! `q_spread = max_p d(q_rep, p)` over the query's support. For an object
//! `O` summarized by ball `(rep_O, spread_O)` (the leaf entry payload of
//! the [`MTree`]), every qualifying pair `(p ∈ q, r ∈ O)` satisfies
//!
//! ```text
//! d(p, r) ≥ d(q_rep, rep_O) − q_spread − spread_O
//! ```
//!
//! so the clamped square of the right-hand side lower-bounds `d_α(q, O)²`
//! at every threshold. Node balls `(router, r_cover)` bound whole subtrees
//! the same way. Exact α-distances come from
//! [`Metric::alpha_distance_sq_bounded`] with the inflated-τ seed, exactly
//! like the rectangle engine's probes, and results are reported in the
//! same canonical `(distance, id)` order — under `Metric = L2` the answer
//! set matches the exact rectangle engine bit for bit (pinned by the
//! metric-search suite), while the *costs* differ because ball bounds are
//! looser than box bounds.

use crate::aknn::inflate_sq;
use crate::error::QueryError;
use crate::result::{AknnResult, DistBound, Neighbor};
use crate::stats::QueryStats;
use fuzzy_core::metric::Metric;
use fuzzy_core::{FuzzyObject, ObjectId, Threshold};
use fuzzy_index::mtree::MTree;
use fuzzy_index::{MinKey, NodeAccess, NodeId, NodeView};
use fuzzy_store::ObjectStore;
use std::collections::BinaryHeap;
use std::time::Instant;

/// A unit of pending best-first work.
enum Pending {
    /// An unexpanded M-tree node.
    Node(NodeId),
    /// A leaf entry awaiting its exact probe.
    Object(ObjectId),
}

/// The query-side ball: representative point and its metric spread.
pub(crate) fn query_ball<M: Metric<D> + ?Sized, const D: usize>(
    metric: &M,
    q: &FuzzyObject<D>,
) -> (fuzzy_geom::Point<D>, f64) {
    let rep = q.rep_point();
    let spread = q.points().iter().map(|p| metric.dist(&rep, p)).fold(0.0_f64, f64::max);
    (rep, spread)
}

/// Clamped squared lower bound from two balls at center distance `d`.
pub(crate) fn ball_lb_sq(d: f64, q_spread: f64, other_radius: f64) -> f64 {
    let lb = (d - q_spread - other_radius).max(0.0);
    lb * lb
}

/// k nearest objects to `q` at threshold `t` under `metric`, searched
/// through an [`MTree`] built under the *same* metric (the `.fzmt` loader
/// enforces the pairing by name; in-process callers must uphold it).
///
/// Returns exact neighbours in canonical `(distance, id)` order. Costs are
/// accounted in the same units as the rectangle engine: `node_accesses`
/// per expanded node, `object_accesses` per store probe, `distance_evals`
/// per exact α-distance evaluation, `bound_evals` per entry bound.
pub fn metric_aknn<M: Metric<D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    tree: &MTree<D>,
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
) -> Result<AknnResult, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    if q.cut_len(t) == 0 {
        return Err(QueryError::EmptyQueryCut);
    }
    let start = Instant::now();
    let mut stats = QueryStats::default();
    let (q_rep, q_spread) = query_ball(metric, q);

    // Exact results so far, kept sorted by (squared distance, id); τ is
    // the k-th entry's distance once the set is full.
    let mut found: Vec<(f64, ObjectId)> = Vec::with_capacity(k + 1);
    let tau_sq = |found: &Vec<(f64, ObjectId)>| {
        if found.len() == k {
            found[k - 1].0
        } else {
            f64::INFINITY
        }
    };

    let mut heap: BinaryHeap<MinKey<Pending>> = BinaryHeap::new();
    if !tree.is_empty() {
        let root = tree.root_id();
        stats.bound_evals += 1;
        let d = metric.dist(&q_rep, tree.router(root));
        heap.push(MinKey {
            key: ball_lb_sq(d, q_spread, tree.cover_radius(root)),
            item: Pending::Node(root),
        });
    }

    while let Some(MinKey { key, item }) = heap.pop() {
        if found.len() == k && key > inflate_sq(tau_sq(&found)) {
            break;
        }
        match item {
            Pending::Node(id) => {
                stats.node_accesses += 1;
                let node = tree.read_node(id).map_err(QueryError::Store)?;
                match node.view() {
                    NodeView::Nodes(children) => {
                        for child in children {
                            stats.bound_evals += 1;
                            let d = metric.dist(&q_rep, tree.router(child.id));
                            let lb = ball_lb_sq(d, q_spread, tree.cover_radius(child.id));
                            if found.len() < k || lb <= inflate_sq(tau_sq(&found)) {
                                heap.push(MinKey { key: lb, item: Pending::Node(child.id) });
                            }
                        }
                    }
                    NodeView::Entries(entries) => {
                        let spreads =
                            tree.leaf_spreads(id).expect("leaf view implies leaf spreads");
                        for (e, &spread) in entries.iter().zip(spreads) {
                            stats.bound_evals += 1;
                            let d = metric.dist(&q_rep, &e.rep);
                            let lb = ball_lb_sq(d, q_spread, spread);
                            if found.len() < k || lb <= inflate_sq(tau_sq(&found)) {
                                heap.push(MinKey { key: lb, item: Pending::Object(e.id) });
                            }
                        }
                    }
                }
            }
            Pending::Object(id) => {
                stats.object_accesses += 1;
                let obj = store.probe(id).map_err(QueryError::Store)?;
                stats.distance_evals += 1;
                let seed = inflate_sq(tau_sq(&found));
                // Probed object first, constant query second: the kernel's
                // second argument is the reusable side, and `q` is the one
                // operand whose caches survive across probes.
                if let Some(d_sq) = metric.alpha_distance_sq_bounded(&obj, q, t, seed) {
                    let pos = found.partition_point(|&(d, i)| d < d_sq || (d == d_sq && i < id));
                    found.insert(pos, (d_sq, id));
                    found.truncate(k);
                }
            }
        }
    }

    stats.wall = start.elapsed();
    let neighbors = found
        .into_iter()
        .map(|(d_sq, id)| Neighbor { id, dist: DistBound::Exact(d_sq.sqrt()) })
        .collect();
    Ok(AknnResult { neighbors, stats })
}

/// Brute-force oracle: evaluate `d_α(q, O)` for **every** stored object
/// under `metric` and keep the k smallest in canonical `(distance, id)`
/// order. Linear cost, no index — what the metric suite diffs
/// [`metric_aknn`] against.
pub fn metric_aknn_brute<M: Metric<D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    store: &S,
    ids: &[ObjectId],
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
) -> Result<AknnResult, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    if q.cut_len(t) == 0 {
        return Err(QueryError::EmptyQueryCut);
    }
    let start = Instant::now();
    let mut stats = QueryStats::default();
    let mut all: Vec<(f64, ObjectId)> = Vec::new();
    for &id in ids {
        stats.object_accesses += 1;
        let obj = store.probe(id).map_err(QueryError::Store)?;
        stats.distance_evals += 1;
        // Same operand order as the indexed path: the per-probe object is
        // the throwaway side, the constant query keeps its warm caches.
        if let Some(d_sq) = metric.alpha_distance_sq_bounded(&obj, q, t, f64::INFINITY) {
            all.push((d_sq, id));
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    all.truncate(k);
    stats.wall = start.elapsed();
    let neighbors = all
        .into_iter()
        .map(|(d_sq, id)| Neighbor { id, dist: DistBound::Exact(d_sq.sqrt()) })
        .collect();
    Ok(AknnResult { neighbors, stats })
}
