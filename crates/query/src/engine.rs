//! The public query facade: a borrowed engine for single-owner use and an
//! `Arc`-based owned engine for sharing one index/store pair across
//! threads (the [`crate::batch::BatchExecutor`] builds on the latter).
//!
//! Both engines are generic over the **index backend** `A` (anything
//! implementing [`NodeAccess`]: the in-memory `RTree` or the
//! disk-resident `PagedRTree`) and the **object store** `S` (anything
//! implementing [`ObjectStore`]), so the same query code serves a fully
//! in-memory setup, a disk-resident one, or any mix.
//!
//! Every query method also has an `*_in` variant taking an explicit
//! [`Metric`]; the plain methods are exact aliases for `*_in(&L2, ..)`.
//! Under [`L2`] the generic path inlines to the specialized kernels, so
//! answers and counters are byte-identical either way (the differential
//! suites pin this).

use crate::aknn::{aknn_at, search, AknnConfig, QueryScratch, SearchMode};
use crate::error::QueryError;
use crate::result::{AknnResult, Neighbor, RknnResult};
use crate::rknn::{self, RknnAlgorithm};
use fuzzy_core::metric::{Metric, L2};
use fuzzy_core::{FuzzyObject, Threshold};
use fuzzy_index::NodeAccess;
use fuzzy_store::ObjectStore;
use std::sync::Arc;

/// A query engine borrowing an index and an object store.
///
/// ```
/// use fuzzy_core::{FuzzyObject, ObjectId};
/// use fuzzy_geom::Point;
/// use fuzzy_index::{RTree, RTreeConfig};
/// use fuzzy_query::{AknnConfig, QueryEngine, RknnAlgorithm};
/// use fuzzy_store::{MemStore, ObjectStore};
///
/// // Six fuzzy objects strung along the x axis, two points each.
/// let store = MemStore::from_objects((0..6).map(|i| {
///     let x = i as f64 * 2.0;
///     FuzzyObject::new(
///         ObjectId(i),
///         vec![Point::xy(x, 0.0), Point::xy(x + 0.5, 0.5)],
///         vec![1.0, 0.4],
///     )
///     .unwrap()
/// }))
/// .unwrap();
/// let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
/// let engine = QueryEngine::new(&tree, &store);
///
/// let query = store.probe(ObjectId(0)).unwrap();
/// let knn = engine.aknn(&query, 3, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
/// assert_eq!(knn.neighbors.len(), 3);
/// assert!(knn.ids().contains(&ObjectId(0))); // the query object itself, at distance 0
///
/// let rknn = engine
///     .rknn(&query, 2, 0.3, 0.7, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub())
///     .unwrap();
/// assert!(rknn.range_of(ObjectId(0)).is_some());
/// ```
pub struct QueryEngine<'a, A, S, const D: usize> {
    tree: &'a A,
    store: &'a S,
}

impl<'a, A: NodeAccess<D>, S: ObjectStore<D>, const D: usize> QueryEngine<'a, A, S, D> {
    /// Bundle an index and a store.
    pub fn new(tree: &'a A, store: &'a S) -> Self {
        Self { tree, store }
    }

    /// The underlying index.
    pub fn tree(&self) -> &A {
        self.tree
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        self.store
    }

    /// Ad-hoc kNN query (Definition 4): the `k` objects with smallest
    /// α-distance to `q` at probability threshold `alpha ∈ (0, 1]`.
    pub fn aknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_with_scratch(q, k, alpha, cfg, &mut QueryScratch::new())
    }

    /// [`QueryEngine::aknn`] under an explicit [`Metric`].
    pub fn aknn_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha });
        }
        self.aknn_at_with_scratch_in(
            metric,
            q,
            k,
            Threshold::at(alpha),
            cfg,
            &mut QueryScratch::new(),
        )
    }

    /// [`QueryEngine::aknn`] with caller-provided [`QueryScratch`]. Workers
    /// issuing many queries should reuse one scratch per thread — the
    /// steady-state search then allocates nothing.
    pub fn aknn_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
        scratch: &mut QueryScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha });
        }
        self.aknn_at_with_scratch(q, k, Threshold::at(alpha), cfg, scratch)
    }

    /// AKNN at an explicit [`Threshold`] (strict thresholds implement the
    /// exact `α + ε` semantics).
    pub fn aknn_at(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_at_with_scratch(q, k, t, cfg, &mut QueryScratch::new())
    }

    /// [`QueryEngine::aknn_at`] under an explicit [`Metric`].
    pub fn aknn_at_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_at_with_scratch_in(metric, q, k, t, cfg, &mut QueryScratch::new())
    }

    /// [`QueryEngine::aknn_at`] with caller-provided scratch.
    pub fn aknn_at_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
        scratch: &mut QueryScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_at_with_scratch_in(&L2, q, k, t, cfg, scratch)
    }

    /// [`QueryEngine::aknn_at_with_scratch`] under an explicit [`Metric`].
    /// This is the root of the AKNN call graph: every other `aknn*` method
    /// funnels here, with the plain variants fixing `metric = &L2`.
    pub fn aknn_at_with_scratch_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
        scratch: &mut QueryScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        aknn_at(metric, self.tree, self.store, q, k, t, cfg, scratch)
    }

    /// Canonical exact AKNN: every neighbour probed to an exact distance,
    /// sorted by (distance, id) regardless of confirmation order. This is
    /// the single-tree reference the cross-shard determinism suite
    /// compares scatter-gather answers against byte for byte — the lazy
    /// variants may legitimately return `Bounded` knowledge and
    /// confirmation order, so they are *not* directly comparable across
    /// execution layouts; this one is.
    pub fn aknn_exact(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_exact_with_scratch(q, k, alpha, cfg, &mut QueryScratch::new())
    }

    /// [`QueryEngine::aknn_exact`] under an explicit [`Metric`].
    pub fn aknn_exact_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_exact_with_scratch_in(metric, q, k, alpha, cfg, &mut QueryScratch::new())
    }

    /// [`QueryEngine::aknn_exact`] with caller-provided scratch.
    pub fn aknn_exact_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
        scratch: &mut QueryScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_exact_with_scratch_in(&L2, q, k, alpha, cfg, scratch)
    }

    /// [`QueryEngine::aknn_exact_with_scratch`] under an explicit
    /// [`Metric`].
    pub fn aknn_exact_with_scratch_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
        scratch: &mut QueryScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha });
        }
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        let out = search(
            metric,
            self.tree,
            self.store,
            q,
            k,
            Threshold::at(alpha),
            cfg,
            SearchMode::Exact,
            scratch,
            None,
            &[],
        )?;
        let mut neighbors: Vec<Neighbor> =
            out.neighbors.into_iter().map(|n| Neighbor { id: n.id, dist: n.dist }).collect();
        neighbors.sort_by(|a, b| a.dist.hi().total_cmp(&b.dist.hi()).then(a.id.cmp(&b.id)));
        Ok(AknnResult { neighbors, stats: out.stats })
    }

    /// Range kNN query (Definition 5): every object belonging to the kNN
    /// set at some `α ∈ [alpha_start, alpha_end]`, with its qualifying
    /// range.
    pub fn rknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
    ) -> Result<RknnResult, QueryError> {
        self.rknn_with_scratch(q, k, alpha_start, alpha_end, algo, cfg, &mut QueryScratch::new())
    }

    /// [`QueryEngine::rknn`] under an explicit [`Metric`].
    #[allow(clippy::too_many_arguments)]
    pub fn rknn_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
    ) -> Result<RknnResult, QueryError> {
        self.rknn_with_scratch_in(
            metric,
            q,
            k,
            alpha_start,
            alpha_end,
            algo,
            cfg,
            &mut QueryScratch::new(),
        )
    }

    /// [`QueryEngine::rknn`] with caller-provided scratch; the inner AKNN
    /// invocations of Algorithms 3–5 all reuse it.
    #[allow(clippy::too_many_arguments)]
    pub fn rknn_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
        scratch: &mut QueryScratch<D>,
    ) -> Result<RknnResult, QueryError> {
        self.rknn_with_scratch_in(&L2, q, k, alpha_start, alpha_end, algo, cfg, scratch)
    }

    /// [`QueryEngine::rknn_with_scratch`] under an explicit [`Metric`].
    /// Root of the RKNN call graph, as
    /// [`QueryEngine::aknn_at_with_scratch_in`] is for AKNN.
    #[allow(clippy::too_many_arguments)]
    pub fn rknn_with_scratch_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
        scratch: &mut QueryScratch<D>,
    ) -> Result<RknnResult, QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if !(alpha_start > 0.0 && alpha_start <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha_start });
        }
        if !(alpha_end > 0.0 && alpha_end <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha_end });
        }
        if alpha_start > alpha_end {
            return Err(QueryError::InvalidRange { start: alpha_start, end: alpha_end });
        }
        rknn::run(
            metric,
            &mut rknn::SingleTreeBackend { tree: self.tree, scratch },
            self.store,
            q,
            k,
            alpha_start,
            alpha_end,
            algo,
            cfg,
        )
    }
}

/// An owned, cheaply clonable query engine over `Arc`-shared components.
///
/// Where [`QueryEngine`] borrows its index and store (ideal for one-shot
/// use inside a function), `SharedQueryEngine` *owns* `Arc` handles to
/// them, so it can be cloned into worker threads, stored in long-lived
/// services, or handed to the [`crate::batch::BatchExecutor`]. All query
/// state is per-call; the shared components are only ever read, so any
/// number of clones may query concurrently.
///
/// ```
/// use fuzzy_core::{FuzzyObject, ObjectId};
/// use fuzzy_geom::Point;
/// use fuzzy_index::{RTree, RTreeConfig};
/// use fuzzy_query::{AknnConfig, SharedQueryEngine};
/// use fuzzy_store::{MemStore, ObjectStore};
///
/// let store = MemStore::from_objects((0..4).map(|i| {
///     FuzzyObject::new(
///         ObjectId(i),
///         vec![Point::xy(i as f64, 0.0), Point::xy(i as f64, 1.0)],
///         vec![1.0, 0.5],
///     )
///     .unwrap()
/// }))
/// .unwrap();
/// let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
/// let engine = SharedQueryEngine::from_parts(tree, store);
///
/// let query = engine.store().probe(ObjectId(1)).unwrap();
/// let handle = {
///     let engine = engine.clone(); // Arc bump, not a copy of the index
///     std::thread::spawn(move || engine.aknn(&query, 2, 0.5, &AknnConfig::lb_lp_ub()))
/// };
/// let knn = handle.join().unwrap().unwrap();
/// assert_eq!(knn.neighbors.len(), 2);
/// ```
pub struct SharedQueryEngine<A, S, const D: usize> {
    tree: Arc<A>,
    store: Arc<S>,
}

impl<A, S, const D: usize> Clone for SharedQueryEngine<A, S, D> {
    fn clone(&self) -> Self {
        Self { tree: Arc::clone(&self.tree), store: Arc::clone(&self.store) }
    }
}

impl<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize> SharedQueryEngine<A, S, D> {
    /// Bundle already-shared components.
    pub fn new(tree: Arc<A>, store: Arc<S>) -> Self {
        Self { tree, store }
    }

    /// Take ownership of an index and a store, wrapping both in `Arc`s.
    pub fn from_parts(tree: A, store: S) -> Self {
        Self::new(Arc::new(tree), Arc::new(store))
    }

    /// An engine pinned to the current epoch of a mutable index: the
    /// returned engine answers every query against the snapshot published
    /// at call time, however many writer commits land afterwards. This is
    /// how in-flight AKNN/RKNN/join/batch work stays consistent while the
    /// index is maintained — see [`crate::epoch`].
    pub fn at_snapshot(index: &crate::epoch::Versioned<A>, store: Arc<S>) -> Self
    where
        A: Clone,
    {
        Self::new(index.snapshot(), store)
    }

    /// The underlying index.
    pub fn tree(&self) -> &A {
        &self.tree
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// A clone of the shared index handle.
    pub fn tree_handle(&self) -> Arc<A> {
        Arc::clone(&self.tree)
    }

    /// A clone of the shared store handle.
    pub fn store_handle(&self) -> Arc<S> {
        Arc::clone(&self.store)
    }

    /// A borrowed view, for APIs that take a [`QueryEngine`].
    pub fn as_borrowed(&self) -> QueryEngine<'_, A, S, D> {
        QueryEngine::new(&self.tree, &self.store)
    }

    /// Ad-hoc kNN query; see [`QueryEngine::aknn`].
    pub fn aknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.as_borrowed().aknn(q, k, alpha, cfg)
    }

    /// Ad-hoc kNN under an explicit [`Metric`]; see
    /// [`QueryEngine::aknn_in`].
    pub fn aknn_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.as_borrowed().aknn_in(metric, q, k, alpha, cfg)
    }

    /// AKNN at an explicit [`Threshold`]; see [`QueryEngine::aknn_at`].
    pub fn aknn_at(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.as_borrowed().aknn_at(q, k, t, cfg)
    }

    /// Range kNN query; see [`QueryEngine::rknn`].
    #[allow(clippy::too_many_arguments)]
    pub fn rknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
    ) -> Result<RknnResult, QueryError> {
        self.as_borrowed().rknn(q, k, alpha_start, alpha_end, algo, cfg)
    }
}

#[cfg(test)]
mod send_sync_tests {
    use super::*;
    use fuzzy_index::{PagedRTree, RTree};
    use fuzzy_store::{CachedStore, FileStore, MemStore};

    fn assert_send_sync<T: Send + Sync>() {}

    /// The whole read path must be shareable across threads: the trees,
    /// the stores, and both engines over them — for every backend
    /// combination. This is a compile-time audit — adding interior
    /// mutability without synchronization anywhere in
    /// `index`/`store`/`query` breaks this test.
    #[test]
    fn engines_and_components_are_send_sync() {
        assert_send_sync::<RTree<2>>();
        assert_send_sync::<PagedRTree<2>>();
        assert_send_sync::<MemStore<2>>();
        assert_send_sync::<FileStore<2>>();
        assert_send_sync::<QueryEngine<'static, RTree<2>, MemStore<2>, 2>>();
        assert_send_sync::<QueryEngine<'static, RTree<2>, FileStore<2>, 2>>();
        assert_send_sync::<QueryEngine<'static, PagedRTree<2>, FileStore<2>, 2>>();
        assert_send_sync::<SharedQueryEngine<RTree<2>, MemStore<2>, 2>>();
        assert_send_sync::<SharedQueryEngine<RTree<2>, FileStore<2>, 2>>();
        assert_send_sync::<SharedQueryEngine<PagedRTree<2>, FileStore<2>, 2>>();
        assert_send_sync::<SharedQueryEngine<PagedRTree<2>, CachedStore<FileStore<2>, 2>, 2>>();
    }
}
