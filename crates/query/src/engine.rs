//! The public query facade.

use crate::aknn::{aknn_at, AknnConfig};
use crate::error::QueryError;
use crate::result::{AknnResult, RknnResult};
use crate::rknn::{self, RknnAlgorithm};
use fuzzy_core::{FuzzyObject, Threshold};
use fuzzy_index::RTree;
use fuzzy_store::ObjectStore;

/// A query engine over an R-tree and an object store.
///
/// ```no_run
/// # use fuzzy_query::{QueryEngine, AknnConfig, RknnAlgorithm};
/// # use fuzzy_index::{RTree, RTreeConfig};
/// # use fuzzy_store::{MemStore, ObjectStore};
/// # fn demo(store: MemStore<2>, query: fuzzy_core::FuzzyObject<2>) {
/// let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
/// let engine = QueryEngine::new(&tree, &store);
/// let knn = engine.aknn(&query, 10, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
/// let rknn = engine
///     .rknn(&query, 10, 0.3, 0.7, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub())
///     .unwrap();
/// # }
/// ```
pub struct QueryEngine<'a, S, const D: usize> {
    tree: &'a RTree<D>,
    store: &'a S,
}

impl<'a, S: ObjectStore<D>, const D: usize> QueryEngine<'a, S, D> {
    /// Bundle an index and a store.
    pub fn new(tree: &'a RTree<D>, store: &'a S) -> Self {
        Self { tree, store }
    }

    /// The underlying index.
    pub fn tree(&self) -> &RTree<D> {
        self.tree
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        self.store
    }

    /// Ad-hoc kNN query (Definition 4): the `k` objects with smallest
    /// α-distance to `q` at probability threshold `alpha ∈ (0, 1]`.
    pub fn aknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha });
        }
        self.aknn_at(q, k, Threshold::at(alpha), cfg)
    }

    /// AKNN at an explicit [`Threshold`] (strict thresholds implement the
    /// exact `α + ε` semantics).
    pub fn aknn_at(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        aknn_at(self.tree, self.store, q, k, t, cfg)
    }

    /// Range kNN query (Definition 5): every object belonging to the kNN
    /// set at some `α ∈ [alpha_start, alpha_end]`, with its qualifying
    /// range.
    pub fn rknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
    ) -> Result<RknnResult, QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if !(alpha_start > 0.0 && alpha_start <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha_start });
        }
        if !(alpha_end > 0.0 && alpha_end <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha_end });
        }
        if alpha_start > alpha_end {
            return Err(QueryError::InvalidRange { start: alpha_start, end: alpha_end });
        }
        rknn::run(self.tree, self.store, q, k, alpha_start, alpha_end, algo, cfg)
    }
}
