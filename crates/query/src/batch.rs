//! Concurrent batch query execution.
//!
//! The paper's experiments (§6) are workload-level: thousands of AKNN/RKNN
//! queries over one shared index and store, varying k, α and the pruning
//! variant. [`BatchExecutor`] is that execution layer: it fans a workload
//! of mixed requests across scoped worker threads, each running ordinary
//! single-query searches against the shared (read-only) engine.
//!
//! Guarantees, independent of the thread count:
//!
//! * **Deterministic output order** — `responses[i]` always answers
//!   `requests[i]`; workers claim requests from a shared cursor but report
//!   results by request index.
//! * **Lossless stats** — every query charges a private [`QueryStats`];
//!   per-thread and whole-batch aggregates are exact sums, so a
//!   multi-thread run accounts for exactly the same probes and node
//!   expansions as the equivalent sequential run. One caveat: over a
//!   *shared cache layer* (`CachedStore`) the disk-read/cache-hit split
//!   of each probe depends on how concurrent queries interleave, so
//!   `object_accesses` totals can differ from a sequential run there —
//!   the answers themselves remain identical. Over cache-free stores
//!   (`FileStore`, `MemStore`) the equality is exact and test-enforced.
//! * **Graceful errors** — a failing query yields `Err` in its own slot
//!   and the batch keeps going; nothing panics across the scope.

use crate::aknn::{AknnConfig, QueryScratch};
use crate::engine::{QueryEngine, SharedQueryEngine};
use crate::error::QueryError;
use crate::result::{AknnResult, RknnResult};
use crate::rknn::RknnAlgorithm;
use crate::shard::{ShardScratch, ShardedQueryEngine};
use crate::stats::QueryStats;
use fuzzy_core::FuzzyObject;
use fuzzy_index::NodeAccess;
use fuzzy_store::ObjectStore;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One query of a batched workload.
#[derive(Clone, Debug)]
pub enum BatchRequest<const D: usize> {
    /// An AKNN query (Definition 4).
    Aknn {
        /// The query object.
        query: FuzzyObject<D>,
        /// Number of neighbours.
        k: usize,
        /// Probability threshold in `(0, 1]`.
        alpha: f64,
        /// Pruning variant.
        cfg: AknnConfig,
    },
    /// An RKNN query (Definition 5).
    Rknn {
        /// The query object.
        query: FuzzyObject<D>,
        /// Number of neighbours.
        k: usize,
        /// Range start in `(0, 1]`.
        alpha_start: f64,
        /// Range end in `(0, 1]`.
        alpha_end: f64,
        /// Algorithm (Naive/Basic/RSS/RSS-ICR).
        algo: RknnAlgorithm,
        /// Pruning variant for the inner AKNN searches.
        cfg: AknnConfig,
    },
}

impl<const D: usize> BatchRequest<D> {
    /// Convenience constructor for an AKNN request.
    pub fn aknn(query: FuzzyObject<D>, k: usize, alpha: f64, cfg: AknnConfig) -> Self {
        Self::Aknn { query, k, alpha, cfg }
    }

    /// Convenience constructor for an RKNN request.
    pub fn rknn(
        query: FuzzyObject<D>,
        k: usize,
        range: (f64, f64),
        algo: RknnAlgorithm,
        cfg: AknnConfig,
    ) -> Self {
        Self::Rknn { query, k, alpha_start: range.0, alpha_end: range.1, algo, cfg }
    }
}

/// The answer to one [`BatchRequest`].
#[derive(Clone, Debug)]
pub enum BatchResponse {
    /// Answer to an AKNN request.
    Aknn(AknnResult),
    /// Answer to an RKNN request.
    Rknn(RknnResult),
}

impl BatchResponse {
    /// Execution costs of this query.
    pub fn stats(&self) -> &QueryStats {
        match self {
            Self::Aknn(r) => &r.stats,
            Self::Rknn(r) => &r.stats,
        }
    }

    /// The AKNN result, if this answered an AKNN request.
    pub fn as_aknn(&self) -> Option<&AknnResult> {
        match self {
            Self::Aknn(r) => Some(r),
            Self::Rknn(_) => None,
        }
    }

    /// The RKNN result, if this answered an RKNN request.
    pub fn as_rknn(&self) -> Option<&RknnResult> {
        match self {
            Self::Aknn(_) => None,
            Self::Rknn(r) => Some(r),
        }
    }
}

/// What one worker thread did.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadStats {
    /// Number of queries this worker executed (successful or failed).
    pub executed: usize,
    /// Exact sum of the per-query stats of this worker's successful
    /// queries.
    pub stats: QueryStats,
}

/// Result of a batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One slot per request, **in request order** regardless of the thread
    /// count or scheduling: `responses[i]` answers `requests[i]`.
    pub responses: Vec<Result<BatchResponse, QueryError>>,
    /// Per-worker accounting (length = worker count actually spawned).
    pub per_thread: Vec<ThreadStats>,
    /// Wall-clock time of the whole batch (not the sum of per-query
    /// walls — with `t` threads this is roughly `sum / t`).
    pub wall: Duration,
}

impl BatchOutcome {
    /// Lossless sum of the stats of every successful query. Per-query
    /// stats are charged locally, never read back from shared counters,
    /// so over cache-free stores this equals the sequential total
    /// exactly. Over a shared `CachedStore`, `object_accesses` depends on
    /// how concurrent queries interleave on the cache (see the module
    /// docs); all other counters remain exact.
    pub fn total_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for t in &self.per_thread {
            total += t.stats;
        }
        total
    }

    /// Number of successful queries.
    pub fn ok_count(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of failed queries.
    pub fn error_count(&self) -> usize {
        self.responses.len() - self.ok_count()
    }

    /// Iterate over the failures with their request indices.
    pub fn errors(&self) -> impl Iterator<Item = (usize, &QueryError)> {
        self.responses.iter().enumerate().filter_map(|(i, r)| match r {
            Err(e) => Some((i, e)),
            Ok(_) => None,
        })
    }
}

/// Fans a workload of [`BatchRequest`]s across scoped worker threads.
///
/// Workers pull requests from a shared atomic cursor (dynamic load
/// balancing — an expensive RKNN does not stall the queue behind it) and
/// run ordinary single-query searches; the index and store are only read.
/// See [`BatchOutcome`] for the ordering and accounting guarantees.
///
/// ```
/// use fuzzy_core::{FuzzyObject, ObjectId};
/// use fuzzy_geom::Point;
/// use fuzzy_index::{RTree, RTreeConfig};
/// use fuzzy_query::{AknnConfig, BatchExecutor, BatchRequest, SharedQueryEngine};
/// use fuzzy_store::{MemStore, ObjectStore};
///
/// let store = MemStore::from_objects((0..8).map(|i| {
///     FuzzyObject::new(
///         ObjectId(i),
///         vec![Point::xy(i as f64, 0.0), Point::xy(i as f64, 0.5)],
///         vec![1.0, 0.5],
///     )
///     .unwrap()
/// }))
/// .unwrap();
/// let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
/// let engine = SharedQueryEngine::from_parts(tree, store);
///
/// let requests: Vec<BatchRequest<2>> = (0..8)
///     .map(|i| {
///         let q = engine.store().probe(ObjectId(i)).unwrap().as_ref().clone();
///         BatchRequest::aknn(q, 3, 0.5, AknnConfig::lb_lp_ub())
///     })
///     .collect();
///
/// let outcome = BatchExecutor::new(4).run_shared(&engine, &requests);
/// assert_eq!(outcome.responses.len(), 8);
/// assert_eq!(outcome.error_count(), 0);
/// // responses[i] answers requests[i]: each query object is its own 1-NN.
/// let first = outcome.responses[0].as_ref().unwrap().as_aknn().unwrap();
/// assert!(first.ids().contains(&ObjectId(0)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchExecutor {
    threads: usize,
}

impl Default for BatchExecutor {
    /// One worker per available CPU.
    fn default() -> Self {
        Self::new(0)
    }
}

impl BatchExecutor {
    /// Executor with a fixed worker count; `0` means one worker per
    /// available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// A single-worker executor (the sequential reference).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a workload against a borrowed index and store (any
    /// [`NodeAccess`] backend — in-memory or paged).
    pub fn run<A, S, const D: usize>(
        &self,
        tree: &A,
        store: &S,
        requests: &[BatchRequest<D>],
    ) -> BatchOutcome
    where
        A: NodeAccess<D> + Sync,
        S: ObjectStore<D> + Sync,
    {
        let started = Instant::now();
        // Never spawn more workers than there are requests.
        let workers = self.threads.min(requests.len()).max(1);
        let cursor = AtomicUsize::new(0);

        let mut responses: Vec<Option<Result<BatchResponse, QueryError>>> = Vec::new();
        responses.resize_with(requests.len(), || None);
        let mut per_thread = vec![ThreadStats::default(); workers];

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let engine = QueryEngine::new(tree, store);
                        // One scratch per worker: every query this thread
                        // claims reuses the same heap/buffer/arena
                        // capacity, so steady state allocates nothing.
                        let mut scratch = QueryScratch::new();
                        let mut report = ThreadStats::default();
                        let mut answered: Vec<(usize, Result<BatchResponse, QueryError>)> =
                            Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(request) = requests.get(i) else { break };
                            let res = execute_caught(&engine, request, &mut scratch);
                            report.executed += 1;
                            if let Ok(r) = &res {
                                report.stats += *r.stats();
                            }
                            answered.push((i, res));
                        }
                        (report, answered)
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                let (report, answered) = handle.join().expect("batch worker panicked");
                per_thread[w] = report;
                for (i, res) in answered {
                    responses[i] = Some(res);
                }
            }
        });

        BatchOutcome {
            responses: responses
                .into_iter()
                .map(|slot| slot.expect("every request index was claimed exactly once"))
                .collect(),
            per_thread,
            wall: started.elapsed(),
        }
    }

    /// Run a workload against a [`SharedQueryEngine`].
    pub fn run_shared<A, S, const D: usize>(
        &self,
        engine: &SharedQueryEngine<A, S, D>,
        requests: &[BatchRequest<D>],
    ) -> BatchOutcome
    where
        A: NodeAccess<D> + Sync,
        S: ObjectStore<D> + Sync,
    {
        self.run(engine.tree(), engine.store(), requests)
    }

    /// Run a workload against a shard forest: same worker pool, same
    /// cursor, same ordering and accounting guarantees as
    /// [`BatchExecutor::run`], but each query fans out across the shards
    /// with a shared τ bound ([`crate::shard`]). Every worker owns one
    /// [`ShardScratch`] — a scratch lane per shard — so steady state
    /// allocates nothing here either. AKNN answers come back in
    /// canonical exact form — byte-identical to the single-tree
    /// *exact* engine (`QueryEngine::aknn_exact`), not the lazy
    /// confirmation-order results `run` returns for the same request.
    pub fn run_sharded<A, S, const D: usize>(
        &self,
        shards: &[A],
        store: &S,
        requests: &[BatchRequest<D>],
    ) -> BatchOutcome
    where
        A: NodeAccess<D> + Sync,
        S: ObjectStore<D> + Sync,
    {
        let started = Instant::now();
        let workers = self.threads.min(requests.len()).max(1);
        let cursor = AtomicUsize::new(0);

        let mut responses: Vec<Option<Result<BatchResponse, QueryError>>> = Vec::new();
        responses.resize_with(requests.len(), || None);
        let mut per_thread = vec![ThreadStats::default(); workers];

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let engine = ShardedQueryEngine::new(shards, store);
                        let mut scratch = ShardScratch::new();
                        let mut report = ThreadStats::default();
                        let mut answered: Vec<(usize, Result<BatchResponse, QueryError>)> =
                            Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(request) = requests.get(i) else { break };
                            let res = execute_caught_sharded(&engine, request, &mut scratch);
                            report.executed += 1;
                            if let Ok(r) = &res {
                                report.stats += *r.stats();
                            }
                            answered.push((i, res));
                        }
                        (report, answered)
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                let (report, answered) = handle.join().expect("batch worker panicked");
                per_thread[w] = report;
                for (i, res) in answered {
                    responses[i] = Some(res);
                }
            }
        });

        BatchOutcome {
            responses: responses
                .into_iter()
                .map(|slot| slot.expect("every request index was claimed exactly once"))
                .collect(),
            per_thread,
            wall: started.elapsed(),
        }
    }
}

/// Dispatch one request on the calling thread, reusing the worker's
/// scratch.
///
/// This is the single-request execution primitive shared by the batch
/// workers and the resident query server — both hand it a long-lived
/// [`QueryScratch`] so steady state allocates nothing.
pub fn execute_one<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    engine: &QueryEngine<'_, A, S, D>,
    request: &BatchRequest<D>,
    scratch: &mut QueryScratch<D>,
) -> Result<BatchResponse, QueryError> {
    match request {
        BatchRequest::Aknn { query, k, alpha, cfg } => {
            engine.aknn_with_scratch(query, *k, *alpha, cfg, scratch).map(BatchResponse::Aknn)
        }
        BatchRequest::Rknn { query, k, alpha_start, alpha_end, algo, cfg } => engine
            .rknn_with_scratch(query, *k, *alpha_start, *alpha_end, *algo, cfg, scratch)
            .map(BatchResponse::Rknn),
    }
}

/// Like [`execute_one`], but a panic inside the query is caught at this
/// per-query boundary and surfaced as [`QueryError::Panicked`] in the
/// request's own error slot, so one poisoned query cannot tear down the
/// batch scope (or a server worker) and take the other answers with it.
///
/// Reusing the scratch afterwards is sound: every search resets the
/// scratch on entry, so a half-filled heap or buffer from the unwound
/// query cannot leak into the next one.
pub fn execute_caught<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    engine: &QueryEngine<'_, A, S, D>,
    request: &BatchRequest<D>,
    scratch: &mut QueryScratch<D>,
) -> Result<BatchResponse, QueryError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_one(engine, request, scratch)))
        .unwrap_or_else(|payload| Err(QueryError::Panicked { message: panic_message(&*payload) }))
}

/// [`execute_one`] over a shard forest: the same request dispatch, but
/// AKNN runs scatter-gather with the shared τ bound and RKNN's inner
/// searches route through the forest backend.
pub fn execute_one_sharded<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    engine: &ShardedQueryEngine<'_, A, S, D>,
    request: &BatchRequest<D>,
    scratch: &mut ShardScratch<D>,
) -> Result<BatchResponse, QueryError> {
    match request {
        BatchRequest::Aknn { query, k, alpha, cfg } => {
            engine.aknn_with_scratch(query, *k, *alpha, cfg, scratch).map(BatchResponse::Aknn)
        }
        BatchRequest::Rknn { query, k, alpha_start, alpha_end, algo, cfg } => engine
            .rknn_with_scratch(query, *k, *alpha_start, *alpha_end, *algo, cfg, scratch)
            .map(BatchResponse::Rknn),
    }
}

/// [`execute_caught`] over a shard forest: a panic inside one sharded
/// query surfaces as [`QueryError::Panicked`] in that request's slot.
pub fn execute_caught_sharded<A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    engine: &ShardedQueryEngine<'_, A, S, D>,
    request: &BatchRequest<D>,
    scratch: &mut ShardScratch<D>,
) -> Result<BatchResponse, QueryError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_one_sharded(engine, request, scratch)
    }))
    .unwrap_or_else(|payload| Err(QueryError::Panicked { message: panic_message(&*payload) }))
}

/// Extract a human-readable message from a panic payload, when it was a
/// string (the common `panic!("…")` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::ObjectId;
    use fuzzy_geom::Point;
    use fuzzy_index::{RTree, RTreeConfig};
    use fuzzy_store::MemStore;

    fn fixture(n: u64) -> SharedQueryEngine<RTree<2>, MemStore<2>, 2> {
        let store = MemStore::from_objects((0..n).map(|i| {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            FuzzyObject::new(
                ObjectId(i),
                vec![Point::xy(x, y), Point::xy(x + 0.3, y + 0.3), Point::xy(x - 0.2, y + 0.1)],
                vec![1.0, 0.6, 0.3],
            )
            .unwrap()
        }))
        .unwrap();
        let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
        SharedQueryEngine::from_parts(tree, store)
    }

    fn workload(
        engine: &SharedQueryEngine<RTree<2>, MemStore<2>, 2>,
        n: u64,
    ) -> Vec<BatchRequest<2>> {
        (0..n)
            .map(|i| {
                let q = engine.store().probe(ObjectId(i)).unwrap().as_ref().clone();
                if i % 3 == 0 {
                    BatchRequest::rknn(
                        q,
                        2,
                        (0.3, 0.8),
                        RknnAlgorithm::RssIcr,
                        AknnConfig::lb_lp_ub(),
                    )
                } else {
                    BatchRequest::aknn(q, 3, 0.5, AknnConfig::lb_lp_ub())
                }
            })
            .collect()
    }

    #[test]
    fn answers_arrive_in_request_order() {
        let engine = fixture(30);
        let requests = workload(&engine, 30);
        let outcome = BatchExecutor::new(4).run_shared(&engine, &requests);
        assert_eq!(outcome.responses.len(), 30);
        for (i, res) in outcome.responses.iter().enumerate() {
            let res = res.as_ref().unwrap();
            // Request i queried object i; the object is its own nearest
            // neighbour, so it must appear in its own answer.
            match res {
                BatchResponse::Aknn(r) => assert!(r.ids().contains(&ObjectId(i as u64))),
                BatchResponse::Rknn(r) => assert!(r.range_of(ObjectId(i as u64)).is_some()),
            }
        }
    }

    #[test]
    fn per_query_errors_do_not_poison_the_batch() {
        let engine = fixture(10);
        let good = engine.store().probe(ObjectId(0)).unwrap().as_ref().clone();
        let requests = vec![
            BatchRequest::aknn(good.clone(), 2, 0.5, AknnConfig::lb_lp_ub()),
            // Invalid probability: fails validation inside the worker.
            BatchRequest::aknn(good.clone(), 2, 1.5, AknnConfig::lb_lp_ub()),
            BatchRequest::aknn(good, 2, 0.5, AknnConfig::lb_lp_ub()),
        ];
        let outcome = BatchExecutor::new(2).run_shared(&engine, &requests);
        assert_eq!(outcome.ok_count(), 2);
        assert_eq!(outcome.error_count(), 1);
        let (idx, err) = outcome.errors().next().unwrap();
        assert_eq!(idx, 1);
        assert!(matches!(err, QueryError::InvalidProbability { .. }));
    }

    /// A store wrapper that panics when probing one designated id —
    /// simulates a latent bug deep inside a single query's traversal.
    struct PanickyStore<S> {
        inner: S,
        poison: ObjectId,
    }

    impl<S: fuzzy_store::ObjectStore<2>> fuzzy_store::ObjectStore<2> for PanickyStore<S> {
        fn probe(
            &self,
            id: ObjectId,
        ) -> Result<std::sync::Arc<FuzzyObject<2>>, fuzzy_store::StoreError> {
            assert!(id != self.poison, "injected probe panic");
            self.inner.probe(id)
        }

        fn len(&self) -> usize {
            self.inner.len()
        }

        fn summaries(&self) -> &[fuzzy_core::ObjectSummary<2>] {
            self.inner.summaries()
        }

        fn stats(&self) -> fuzzy_store::IoStatsSnapshot {
            self.inner.stats()
        }

        fn reset_stats(&self) {
            self.inner.reset_stats()
        }
    }

    #[test]
    fn panicking_query_is_caught_per_slot() {
        let store = MemStore::from_objects((0..12).map(|i| {
            let x = (i % 4) as f64;
            let y = (i / 4) as f64;
            FuzzyObject::new(
                ObjectId(i),
                vec![Point::xy(x, y), Point::xy(x + 0.3, y + 0.3)],
                vec![1.0, 0.5],
            )
            .unwrap()
        }))
        .unwrap();
        let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
        // Probing object 5 panics; `basic()` probes every popped entry,
        // so a wide AKNN near object 5 is guaranteed to hit it.
        let store = PanickyStore { inner: store, poison: ObjectId(5) };
        let q5 = store.inner.probe(ObjectId(5)).unwrap().as_ref().clone();
        let q0 = store.inner.probe(ObjectId(0)).unwrap().as_ref().clone();

        let requests = vec![
            BatchRequest::aknn(q0.clone(), 2, 0.5, AknnConfig::lb_lp_ub()),
            BatchRequest::aknn(q5, 12, 0.5, AknnConfig::basic()),
            BatchRequest::aknn(q0, 2, 0.5, AknnConfig::lb_lp_ub()),
        ];
        let outcome = BatchExecutor::new(2).run(&tree, &store, &requests);

        assert_eq!(outcome.responses.len(), 3, "every slot answered");
        assert_eq!(outcome.ok_count(), 2, "the other queries' answers survive");
        let (idx, err) = outcome.errors().next().unwrap();
        assert_eq!(idx, 1, "the panic lands in its own request's slot");
        match err {
            QueryError::Panicked { message } => {
                assert!(message.contains("injected probe panic"), "payload preserved: {message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The engine remains usable after the unwind (scratch reset at
        // every search entry): both survivors found their own object.
        for i in [0usize, 2] {
            let r = outcome.responses[i].as_ref().unwrap().as_aknn().unwrap();
            assert!(r.ids().contains(&ObjectId(0)));
        }
    }

    #[test]
    fn worker_count_respects_request_count() {
        let engine = fixture(3);
        let requests = workload(&engine, 3);
        let outcome = BatchExecutor::new(16).run_shared(&engine, &requests);
        assert_eq!(outcome.per_thread.len(), 3);
        let executed: usize = outcome.per_thread.iter().map(|t| t.executed).sum();
        assert_eq!(executed, 3);
    }

    #[test]
    fn empty_workload() {
        let engine = fixture(2);
        let outcome = BatchExecutor::new(4).run_shared(&engine, &[]);
        assert!(outcome.responses.is_empty());
        assert_eq!(outcome.total_stats(), QueryStats::default());
    }
}
