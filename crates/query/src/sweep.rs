//! Exact interval sweep over distance profiles.
//!
//! Given the α-distance profiles of a set of objects against the query,
//! the kNN set is piecewise constant between critical levels; sweeping the
//! elementary intervals of `[αs, αe]` yields the *exact* RKNN answer. This
//! is both the refinement backend of the RSS algorithms (over the pruned
//! candidate set) and — applied to *all* objects — the naive/reference
//! algorithm used as the test oracle.

use crate::interval::{Interval, IntervalSet};
use crate::result::RknnItem;
use fuzzy_core::{DistanceProfile, ObjectId, Threshold};
use std::collections::HashMap;

/// A candidate with its precomputed profile.
pub struct ProfiledCandidate<'a> {
    /// Object id.
    pub id: ObjectId,
    /// Its α-distance profile against the query object.
    pub profile: &'a DistanceProfile,
}

/// Exact sweep: returns each object that is a kNN member somewhere in
/// `[alpha_start, alpha_end]`, with its qualifying range. `floor_count`
/// is the number of objects *not* in `candidates` that are known to be
/// farther than every candidate throughout the range (they can never push
/// a candidate out of the kNN set, but they do occupy no slots — the
/// caller guarantees candidates is a superset of all possible members).
pub fn exact_sweep(
    candidates: &[ProfiledCandidate<'_>],
    k: usize,
    alpha_start: f64,
    alpha_end: f64,
) -> Vec<RknnItem> {
    // Elementary interval boundaries: every critical level inside the
    // range, plus the range end.
    let mut events: Vec<f64> = candidates
        .iter()
        .flat_map(|c| c.profile.critical_set())
        .filter(|&l| l >= alpha_start && l < alpha_end)
        .collect();
    events.push(alpha_end);
    events.sort_by(f64::total_cmp);
    events.dedup();

    let mut acc: HashMap<ObjectId, IntervalSet> = HashMap::new();
    let mut t = Threshold::at(alpha_start);
    let mut scratch: Vec<(f64, ObjectId)> = Vec::with_capacity(candidates.len());

    for &event in &events {
        scratch.clear();
        for c in candidates {
            if let Some(d) = c.profile.value_at(t) {
                scratch.push((d, c.id));
            }
        }
        scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let iv = Interval::new(t.value, !t.strict, event, true);
        for &(_, id) in scratch.iter().take(k) {
            acc.entry(id).or_default().push(iv);
        }
        t = Threshold::above(event);
    }

    let mut items: Vec<RknnItem> =
        acc.into_iter().map(|(id, range)| RknnItem { id, range }).collect();
    items.sort_by_key(|i| i.id);
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;

    /// Build the Figure 3 scenario: four objects with hand-crafted
    /// staircase distances to a point query.
    ///
    /// Distances to Q (at x=0): A constant 1; B is 2 below α=0.45 then 4
    /// above; C is 3 below 0.55 then jumps to 3.5; D constant 5.
    fn fig3() -> (Vec<FuzzyObject<2>>, FuzzyObject<2>) {
        let q = FuzzyObject::new(ObjectId(100), vec![Point::xy(0.0, 0.0)], vec![1.0]).unwrap();
        // Object with a near point at membership `m` and a kernel farther
        // away: d_α = near for α ≤ m, far for α > m.
        let mk = |id: u64, near: f64, far: f64, m: f64| {
            FuzzyObject::new(
                ObjectId(id),
                vec![Point::xy(far, 0.0), Point::xy(near, 0.0)],
                vec![1.0, m],
            )
            .unwrap()
        };
        let a = mk(1, 1.0, 1.0, 0.9); // constant 1
        let b = mk(2, 2.0, 4.0, 0.45);
        let c = mk(3, 3.0, 3.5, 0.55);
        let d = mk(4, 5.0, 5.0, 0.9); // constant 5
        (vec![a, b, c, d], q)
    }

    #[test]
    fn figure3_style_2nn_ranges() {
        let (objs, q) = fig3();
        let profiles: Vec<DistanceProfile> =
            objs.iter().map(|o| DistanceProfile::compute(o, &q)).collect();
        let cands: Vec<ProfiledCandidate<'_>> = objs
            .iter()
            .zip(&profiles)
            .map(|(o, p)| ProfiledCandidate { id: o.id(), profile: p })
            .collect();
        let items = exact_sweep(&cands, 2, 0.3, 0.6);
        // A qualifies everywhere; B on [0.3, 0.45]; C on (0.45, 0.6].
        assert_eq!(items.len(), 3);
        let a = &items[0];
        assert_eq!(a.id, ObjectId(1));
        assert!(a.range.approx_eq(&IntervalSet::from_interval(Interval::closed(0.3, 0.6)), 1e-12));
        let b = &items[1];
        assert_eq!(b.id, ObjectId(2));
        assert!(b.range.approx_eq(&IntervalSet::from_interval(Interval::closed(0.3, 0.45)), 1e-12));
        let c = &items[2];
        assert_eq!(c.id, ObjectId(3));
        assert!(c
            .range
            .approx_eq(&IntervalSet::from_interval(Interval::left_open(0.45, 0.6)), 1e-12));
    }

    #[test]
    fn k_larger_than_candidates_returns_everything() {
        let (objs, q) = fig3();
        let profiles: Vec<DistanceProfile> =
            objs.iter().map(|o| DistanceProfile::compute(o, &q)).collect();
        let cands: Vec<ProfiledCandidate<'_>> = objs
            .iter()
            .zip(&profiles)
            .map(|(o, p)| ProfiledCandidate { id: o.id(), profile: p })
            .collect();
        let items = exact_sweep(&cands, 10, 0.2, 0.9);
        assert_eq!(items.len(), 4);
        for item in &items {
            assert!(item
                .range
                .approx_eq(&IntervalSet::from_interval(Interval::closed(0.2, 0.9)), 1e-12));
        }
    }

    #[test]
    fn degenerate_range_single_point() {
        let (objs, q) = fig3();
        let profiles: Vec<DistanceProfile> =
            objs.iter().map(|o| DistanceProfile::compute(o, &q)).collect();
        let cands: Vec<ProfiledCandidate<'_>> = objs
            .iter()
            .zip(&profiles)
            .map(|(o, p)| ProfiledCandidate { id: o.id(), profile: p })
            .collect();
        // [0.5, 0.5]: 2NN at exactly 0.5 = {A, C} (B jumped to 4 at >0.45).
        let items = exact_sweep(&cands, 2, 0.5, 0.5);
        let ids: Vec<ObjectId> = items.iter().map(|i| i.id).collect();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(3)]);
        for item in &items {
            assert_eq!(item.range.intervals(), &[Interval::closed(0.5, 0.5)]);
        }
    }
}
