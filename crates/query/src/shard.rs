//! Scatter-gather queries over a shard forest with a shared τ bound.
//!
//! A sharded index (`fuzzy_index::ShardedIndex`, or any slice of
//! [`NodeAccess`] backends over one object store) answers AKNN by
//! *scatter-gather*: one best-first search per shard, merged by exact
//! distance. Run naively that does S× the work of a single tree; the
//! paper's Eq.-2 pruning generalizes across trees through one shared
//! bound:
//!
//! * [`SharedTau`] — the global k-th-best **upper bound** τ (squared), an
//!   `AtomicU64` over the IEEE-754 bit pattern (non-negative doubles
//!   order identically as integers, so `fetch_min` on bits is `min` on
//!   distances). Every per-shard search publishes its running k-th-best
//!   live upper bound into it and reads it back at each heap pop, so a
//!   late shard prunes against candidates an earlier shard already found
//!   — often at its root, without a single node read.
//! * Shards are visited in ascending root-rectangle distance from the
//!   query cut, so the shard most likely to contain the answer runs
//!   first and seeds τ tightly for the rest.
//! * Every prune compares strictly against an ulp-inflated τ, so exact
//!   ties survive and the merged answer is **byte-identical** to a
//!   single tree over the union (`crates/query/tests/shard_determinism.rs`
//!   proves this cell by cell; `shard_props.rs` property-checks pruned
//!   against unpruned scatter-gather).
//!
//! [`ShardedQueryEngine`] is the read facade (AKNN/RKNN/join);
//! [`ShardedDynamicEngine`] adds per-shard mutation locks (one
//! [`Versioned`] master per shard — writers to different shards never
//! contend) and shard-parallel compaction.

use crate::aknn::{
    resolve_pool, search, AknnConfig, FoundNeighbor, QueryScratch, SearchMode, SearchOutcome,
};
use crate::epoch::Versioned;
use crate::error::QueryError;
use crate::join::{alpha_distance_join, JoinResult};
use crate::result::{AknnResult, Neighbor, RknnResult};
use crate::rknn::{self, RknnAlgorithm};
use crate::stats::QueryStats;
use fuzzy_core::metric::{Metric, L2};
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary, Threshold};
use fuzzy_geom::Mbr;
use fuzzy_index::{MutableIndex, NodeAccess, OverlayRTree};
use fuzzy_store::{ObjectStore, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The global k-th-best upper bound τ (squared α-distance) shared by the
/// per-shard searches of one scatter-gather query.
///
/// Stored as the IEEE-754 bit pattern of a non-negative `f64` in an
/// `AtomicU64`: for non-negative doubles the unsigned bit order *is* the
/// numeric order, so [`SharedTau::observe`] is a lock-free `fetch_min`.
/// The bound is monotonically non-increasing over the query's lifetime —
/// a reader may see a stale (larger) value, which only weakens pruning,
/// never correctness. One instance lives exactly as long as one query.
#[derive(Debug)]
pub struct SharedTau(AtomicU64);

impl Default for SharedTau {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedTau {
    /// A fresh bound: τ = +∞ (nothing prunes).
    pub fn new() -> Self {
        Self(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// Publish a sound bound: at least `k` distinct objects are known to
    /// lie within `tau_sq` (squared). Keeps the minimum of all published
    /// values; non-finite or negative inputs are ignored.
    pub fn observe(&self, tau_sq: f64) {
        if tau_sq.is_finite() && tau_sq >= 0.0 {
            self.0.fetch_min(tau_sq.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current bound (squared); `+∞` until the first observation.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Reusable scratch for scatter-gather queries: one [`QueryScratch`] lane
/// per shard, grown on demand and retained across queries — a worker
/// thread owns one `ShardScratch` and answers any stream of sharded
/// queries allocation-free in steady state.
pub struct ShardScratch<const D: usize> {
    lanes: Vec<QueryScratch<D>>,
}

impl<const D: usize> Default for ShardScratch<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> ShardScratch<D> {
    /// Empty scratch; lanes appear as shards are searched.
    pub fn new() -> Self {
        Self { lanes: Vec::new() }
    }

    /// The scratch lane dedicated to shard `i`.
    pub(crate) fn lane(&mut self, i: usize) -> &mut QueryScratch<D> {
        while self.lanes.len() <= i {
            self.lanes.push(QueryScratch::new());
        }
        &mut self.lanes[i]
    }
}

/// Compare two exact-distance neighbours canonically: by distance, ties
/// by object id. This is the merge order of every scatter-gather result,
/// independent of shard count and visit order.
fn canonical_cmp<const D: usize>(a: &FoundNeighbor<D>, b: &FoundNeighbor<D>) -> std::cmp::Ordering {
    a.dist.hi().total_cmp(&b.dist.hi()).then(a.id.cmp(&b.id))
}

/// Match the ulp inflation of the search-internal bound comparisons (see
/// `aknn::inflate_sq`): a merged k-th distance is published with this
/// slack so the sqrt→square round trip can never tighten τ below the
/// true k-th squared distance.
#[inline]
fn inflate_sq(hi_sq: f64) -> f64 {
    hi_sq * (1.0 + 1e-12) + f64::MIN_POSITIVE
}

/// Scatter-gather AKNN over a shard forest: per-shard *lazy* best-first
/// searches sharing τ through `SharedTau`, then one gather phase
/// ([`crate::aknn::resolve_pool`]) that resolves the merged candidate
/// pool to exact distances in global lower-bound order, merged
/// canonically (distance, then id) and truncated to `k`.
///
/// Shards are visited in ascending `root_mbr → query-cut` distance (ties
/// by shard index), so the most promising shard establishes τ first and
/// later shards prune against it — a shard whose root rectangle already
/// lies beyond τ is dismissed at its root pop with **zero** node reads
/// and zero object probes. After each shard, every pooled candidate's
/// tightest bound is carried into the next shard's seed tracker and the
/// pool's k-th-best bound is published as τ, so later shards hold the
/// same candidate-granularity domination a single tree would. Object
/// probes are deferred to the gather phase wherever the variant allows
/// (the scatter runs lazy), which keeps total probes at S shards from
/// exceeding the single-shard baseline: the gather probes in exactly
/// the order a single tree would.
///
/// `pruned = false` runs every shard independently (no τ exchange) —
/// the reference the property suite compares against.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sharded_search<M: Metric<D>, A: NodeAccess<D>, S: ObjectStore<D>, const D: usize>(
    metric: &M,
    shards: &[A],
    store: &S,
    q: &FuzzyObject<D>,
    k: usize,
    t: Threshold,
    cfg: &AknnConfig,
    pruned: bool,
    scratch: &mut ShardScratch<D>,
) -> Result<SearchOutcome<D>, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    let start = Instant::now();
    let q_cut = q.cut_mbr(t).ok_or(QueryError::EmptyQueryCut)?;

    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by(|&a, &b| {
        let da = metric.min_box_dist_sq(&shards[a].root_mbr(), &q_cut);
        let db = metric.min_box_dist_sq(&shards[b].root_mbr(), &q_cut);
        da.total_cmp(&db).then(a.cmp(&b))
    });

    let tau = SharedTau::new();
    let shared = pruned.then_some(&tau);
    let mut pool: Vec<FoundNeighbor<D>> = Vec::with_capacity(k * shards.len().max(1));
    let mut stats = QueryStats::default();
    // Candidates carried into the next shard's seed tracker: (id,
    // tightest squared bound) of everything pooled so far. Ids are
    // disjoint across shards and every entry is a live candidate of the
    // gather phase, so later shards may count them toward the running
    // k-th-best bound exactly like local candidates — the
    // candidate-granularity domination a single tree gets for free.
    let mut carry: Vec<(fuzzy_core::ObjectId, f64)> = Vec::new();
    let mut hi_tmp: Vec<f64> = Vec::new();
    for &si in &order {
        let out = search(
            metric,
            &shards[si],
            store,
            q,
            k,
            t,
            cfg,
            SearchMode::Collect,
            scratch.lane(si),
            shared,
            if pruned { &carry } else { &[] },
        )?;
        stats.object_accesses += out.stats.object_accesses;
        stats.node_accesses += out.stats.node_accesses;
        stats.node_disk_reads += out.stats.node_disk_reads;
        stats.distance_evals += out.stats.distance_evals;
        stats.bound_evals += out.stats.bound_evals;
        pool.extend(out.neighbors);
        if pruned {
            carry.clear();
            carry.extend(pool.iter().map(|n| {
                let h = n.dist.hi();
                (n.id, if h.is_finite() { h * h } else { f64::INFINITY })
            }));
            if pool.len() >= k {
                hi_tmp.clear();
                hi_tmp.extend(carry.iter().map(|&(_, h)| h));
                let (_, kth, _) = hi_tmp.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
                if kth.is_finite() {
                    tau.observe(inflate_sq(*kth));
                }
            }
        }
    }

    let mut merged = resolve_pool(metric, store, q, k, t, pool, &mut stats)?;
    merged.sort_by(canonical_cmp);
    merged.truncate(k);

    stats.wall = start.elapsed();
    Ok(SearchOutcome { neighbors: merged, stats })
}

/// A query engine over a shard forest: any slice of [`NodeAccess`]
/// backends (`&[RTree]`, `&[Arc<PagedRTree>]`, a snapshot vector from a
/// [`ShardedDynamicEngine`]) plus the one shared object store. Answers
/// are byte-identical to a single-tree [`QueryEngine`](crate::QueryEngine) over the union of
/// the shards — the forest is an execution layout, not a semantic change.
pub struct ShardedQueryEngine<'a, A, S, const D: usize> {
    shards: &'a [A],
    store: &'a S,
}

impl<'a, A: NodeAccess<D>, S: ObjectStore<D>, const D: usize> ShardedQueryEngine<'a, A, S, D> {
    /// Bundle a shard slice and a store.
    pub fn new(shards: &'a [A], store: &'a S) -> Self {
        Self { shards, store }
    }

    /// The shard slice.
    pub fn shards(&self) -> &'a [A] {
        self.shards
    }

    /// The shared object store.
    pub fn store(&self) -> &'a S {
        self.store
    }

    /// Scatter-gather kNN (Definition 4) at `alpha ∈ (0, 1]`. All
    /// returned distances are exact, sorted by (distance, id).
    pub fn aknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        self.aknn_with_scratch(q, k, alpha, cfg, &mut ShardScratch::new())
    }

    /// [`Self::aknn`] under an explicit [`Metric`]: the scatter, the τ
    /// exchange and the gather all prune through `metric`'s hooks. With
    /// `&L2` this is byte-identical to [`Self::aknn`].
    pub fn aknn_in<M: Metric<D>>(
        &self,
        metric: &M,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> Result<AknnResult, QueryError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha });
        }
        let outcome = sharded_search(
            metric,
            self.shards,
            self.store,
            q,
            k,
            Threshold::at(alpha),
            cfg,
            true,
            &mut ShardScratch::new(),
        )?;
        Ok(to_aknn_result(outcome))
    }

    /// [`Self::aknn`] with caller-provided scratch (one per worker).
    pub fn aknn_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
        scratch: &mut ShardScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha });
        }
        self.aknn_at_with_scratch(q, k, Threshold::at(alpha), cfg, scratch)
    }

    /// Scatter-gather AKNN at an explicit [`Threshold`].
    pub fn aknn_at_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        t: Threshold,
        cfg: &AknnConfig,
        scratch: &mut ShardScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        let outcome = sharded_search(&L2, self.shards, self.store, q, k, t, cfg, true, scratch)?;
        Ok(to_aknn_result(outcome))
    }

    /// [`Self::aknn_with_scratch`] without the shared τ: every shard is
    /// searched independently and the results merged. Same answers,
    /// strictly more work — this is the reference arm of the
    /// pruning-equivalence property suite, public so external harnesses
    /// can check τ soundness on their own data.
    pub fn aknn_unpruned_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
        scratch: &mut ShardScratch<D>,
    ) -> Result<AknnResult, QueryError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha });
        }
        let outcome = sharded_search(
            &L2,
            self.shards,
            self.store,
            q,
            k,
            Threshold::at(alpha),
            cfg,
            false,
            scratch,
        )?;
        Ok(to_aknn_result(outcome))
    }

    /// Range kNN (Definition 5) over the forest: the inner AKNN calls of
    /// Algorithms 3–5 all route through the scatter-gather path with
    /// shared τ, and the RSS range scan unions per-shard range searches.
    pub fn rknn(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
    ) -> Result<RknnResult, QueryError> {
        self.rknn_with_scratch(q, k, alpha_start, alpha_end, algo, cfg, &mut ShardScratch::new())
    }

    /// [`Self::rknn`] with caller-provided scratch.
    #[allow(clippy::too_many_arguments)]
    pub fn rknn_with_scratch(
        &self,
        q: &FuzzyObject<D>,
        k: usize,
        alpha_start: f64,
        alpha_end: f64,
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
        scratch: &mut ShardScratch<D>,
    ) -> Result<RknnResult, QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if !(alpha_start > 0.0 && alpha_start <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha_start });
        }
        if !(alpha_end > 0.0 && alpha_end <= 1.0) {
            return Err(QueryError::InvalidProbability { value: alpha_end });
        }
        if alpha_start > alpha_end {
            return Err(QueryError::InvalidRange { start: alpha_start, end: alpha_end });
        }
        rknn::run(
            &L2,
            &mut rknn::ForestBackend { shards: self.shards, scratch },
            self.store,
            q,
            k,
            alpha_start,
            alpha_end,
            algo,
            cfg,
        )
    }
}

fn to_aknn_result<const D: usize>(outcome: SearchOutcome<D>) -> AknnResult {
    AknnResult {
        neighbors: outcome
            .neighbors
            .into_iter()
            .map(|n| Neighbor { id: n.id, dist: n.dist })
            .collect(),
        stats: outcome.stats,
    }
}

/// ε-join of two shard forests at threshold `t`: the synchronized
/// traversal of [`alpha_distance_join`] runs once per (left shard, right
/// shard) pair and the pairs concatenate — shards partition their
/// dataset, so the pair sets are disjoint and the canonical
/// (left, right) sort makes the merged answer byte-identical to the
/// single-tree join. Pass a one-element slice to join a forest against a
/// single tree.
pub fn sharded_alpha_distance_join<AL, AR, SL, SR, const D: usize>(
    left_shards: &[AL],
    left_store: &SL,
    right_shards: &[AR],
    right_store: &SR,
    t: Threshold,
    radius: f64,
    cfg: &AknnConfig,
) -> Result<JoinResult, QueryError>
where
    AL: NodeAccess<D>,
    AR: NodeAccess<D>,
    SL: ObjectStore<D>,
    SR: ObjectStore<D>,
{
    let start = Instant::now();
    let mut pairs = Vec::new();
    let mut stats = QueryStats::default();
    for lt in left_shards {
        for rt in right_shards {
            let part = alpha_distance_join(lt, left_store, rt, right_store, t, radius, cfg)?;
            stats.object_accesses += part.stats.object_accesses;
            stats.node_accesses += part.stats.node_accesses;
            stats.node_disk_reads += part.stats.node_disk_reads;
            stats.distance_evals += part.stats.distance_evals;
            stats.bound_evals += part.stats.bound_evals;
            stats.candidates += part.stats.candidates;
            pairs.extend(part.pairs);
        }
    }
    pairs.sort_by_key(|p| (p.left, p.right));
    stats.wall = start.elapsed();
    Ok(JoinResult { pairs, stats })
}

/// A dynamic engine over a shard forest: **per-shard mutation locks**.
///
/// Each shard is its own [`Versioned`] master — writers to different
/// shards commit concurrently without contending, readers pin per-shard
/// snapshots ([`Self::snapshots`]) and query them through a
/// [`ShardedQueryEngine`]. Inserts route to the shard whose build-time
/// region is nearest (a placement heuristic: correctness never depends
/// on routing, because deletes consult every shard and queries visit
/// every non-pruned shard).
///
/// A snapshot vector is assembled shard by shard, so it is consistent
/// *per shard* (each `Arc` is one frozen epoch) but not a global
/// point-in-time cut across shards — the same deal a batch of
/// single-shard engines would give, and sufficient for byte-identical
/// answers as long as each object lives in exactly one shard.
pub struct ShardedDynamicEngine<A, S, const D: usize> {
    shards: Vec<Arc<Versioned<A>>>,
    regions: Vec<Mbr<D>>,
    store: Arc<S>,
}

impl<A, S, const D: usize> Clone for ShardedDynamicEngine<A, S, D> {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.iter().map(Arc::clone).collect(),
            regions: self.regions.clone(),
            store: Arc::clone(&self.store),
        }
    }
}

impl<A, S, const D: usize> ShardedDynamicEngine<A, S, D>
where
    A: MutableIndex<D> + Clone,
    S: ObjectStore<D>,
{
    /// Wrap shard backends with their build-time regions and a shared
    /// store. `regions` must be one rectangle per shard (the `.fzsm`
    /// manifest rows, or [`Mbr::empty`] placeholders — routing then
    /// falls back to shard 0).
    pub fn new(shards: Vec<A>, regions: Vec<Mbr<D>>, store: Arc<S>) -> Self {
        assert_eq!(shards.len(), regions.len(), "one region per shard");
        assert!(!shards.is_empty(), "at least one shard");
        Self {
            shards: shards.into_iter().map(|s| Arc::new(Versioned::new(s))).collect(),
            regions,
            store,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared object store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// A clone of the shared store handle.
    pub fn store_handle(&self) -> Arc<S> {
        Arc::clone(&self.store)
    }

    /// Shard `i`'s versioned master, for direct `write`/`snapshot`
    /// access (e.g. batching many mutations into one commit).
    pub fn versioned(&self, i: usize) -> &Versioned<A> {
        &self.shards[i]
    }

    /// Per-shard epochs of the published snapshots.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// Pin one snapshot per shard. The returned vector is a valid shard
    /// slice for [`ShardedQueryEngine::new`] (the `Arc`s implement
    /// [`NodeAccess`] by delegation) and stays frozen however many
    /// commits land afterwards.
    pub fn snapshots(&self) -> Vec<Arc<A>> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// The shard a summary routes to: nearest build-time region (ties to
    /// the lowest shard id), shard 0 when every region is empty.
    pub fn route(&self, mbr: &Mbr<D>) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, region) in self.regions.iter().enumerate() {
            if region.is_empty() {
                continue;
            }
            let d = region.min_dist_sq(mbr);
            if d < best_d {
                best = i;
                best_d = d;
            }
        }
        best
    }

    /// Insert one summary into its routed shard (that shard's own epoch;
    /// other shards are untouched). Returns the shard id and whether the
    /// insert happened (`false` = duplicate id in that shard; see
    /// [`Self::contains`] for a forest-wide duplicate check).
    pub fn insert(&self, entry: ObjectSummary<D>) -> Result<(usize, bool), StoreError> {
        let shard = self.route(&entry.support_mbr);
        let inserted = self.shards[shard].write_if(|ix| changed(ix.insert_summary(entry)));
        Ok((shard, inserted?))
    }

    /// Delete by object id: consults every shard (routing is a
    /// heuristic, deletion is not). Returns the shard that held the id,
    /// `None` when absent everywhere. Only the owning shard publishes an
    /// epoch.
    pub fn delete(&self, id: ObjectId) -> Result<Option<usize>, StoreError> {
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.write_if(|ix| changed(ix.delete_id(id)))? {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// Replace a summary: delete wherever it lives, reinsert into that
    /// same shard (an object never migrates on update — stable locality
    /// keeps routing deterministic). An unknown id inserts via routing.
    /// Returns the shard and whether an existing entry was replaced.
    pub fn update(&self, entry: ObjectSummary<D>) -> Result<(usize, bool), StoreError> {
        match self.delete(entry.id)? {
            Some(shard) => {
                self.shards[shard].write_if(|ix| changed(ix.insert_summary(entry)))?;
                Ok((shard, true))
            }
            None => {
                let (shard, _) = self.insert(entry)?;
                Ok((shard, false))
            }
        }
    }

    /// True when some shard holds `id` (in its published snapshot).
    pub fn contains(&self, id: ObjectId) -> bool
    where
        A: ContainsId,
    {
        self.shards.iter().any(|s| s.snapshot().contains_id(id))
    }

    /// Live objects across all published shard snapshots.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| NodeAccess::len(s.snapshot().as_ref())).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Adapt a `Result<bool>` mutation outcome for [`Versioned::write_if`]:
/// publish only when the mutation reports a change.
fn changed(out: Result<bool, StoreError>) -> (bool, Result<bool, StoreError>) {
    (matches!(out, Ok(true)), out)
}

/// Id membership — implemented by the mutable backends so the sharded
/// engine can answer forest-wide duplicate checks.
pub trait ContainsId {
    /// True when the index holds a live entry with `id`.
    fn contains_id(&self, id: ObjectId) -> bool;
}

impl<const D: usize> ContainsId for fuzzy_index::RTree<D> {
    fn contains_id(&self, id: ObjectId) -> bool {
        fuzzy_index::RTree::contains_id(self, id)
    }
}

impl<const D: usize> ContainsId for OverlayRTree<D> {
    fn contains_id(&self, id: ObjectId) -> bool {
        OverlayRTree::contains_id(self, id)
    }
}

impl<S: ObjectStore<D>, const D: usize> ShardedDynamicEngine<OverlayRTree<D>, S, D>
where
    S: Sync,
{
    /// Compact every dirty shard, **shard-parallel**: one scoped thread
    /// per shard folds that shard's delta sidecar into its base `.fzpt`
    /// file and publishes the fresh overlay as a new epoch, while the
    /// other shards' writers and all readers proceed unhindered (readers
    /// pinned to the old snapshot keep the pre-compaction file handle —
    /// the compaction renames over the path, it never truncates in
    /// place). Clean shards are skipped without publishing.
    ///
    /// Returns one flag per shard: `true` if it was compacted. The first
    /// error aborts that shard only; others still compact. Note that
    /// compaction changes base-file object counts — callers owning a
    /// `.fzsm` manifest must rewrite its rows afterwards (the CLI does).
    pub fn compact_shards(&self, page_size: u32) -> Vec<Result<bool, StoreError>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        shard.write_if(|ov| {
                            if ov.is_clean() {
                                return (false, Ok(false));
                            }
                            let reopened = ov
                                .clone()
                                .compact(page_size)
                                .and_then(|tree| OverlayRTree::new(Arc::new(tree)));
                            match reopened {
                                Ok(fresh) => {
                                    *ov = fresh;
                                    (true, Ok(true))
                                }
                                Err(e) => (false, Err(e)),
                            }
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("compaction thread panicked")).collect()
        })
    }
}
