//! Query processing for fuzzy-object k-nearest-neighbour search.
//!
//! Implements both query types of the paper, generic over the index
//! backend (`fuzzy_index::NodeAccess`: the in-memory `RTree` or the
//! disk-resident `PagedRTree`) and the object store
//! (`fuzzy_store::ObjectStore`); the determinism suite proves answers
//! are byte-identical across backends and thread counts:
//!
//! * **AKNN** (Definition 4, Section 3): best-first search returning the k
//!   objects with smallest α-distance at one probability threshold. The
//!   four variants benchmarked in §6.2 are configuration flags of one
//!   engine: `Basic`, `LB` (improved lower bound via conservative α-cut
//!   MBRs), `LB-LP` (lazy probe buffer) and `LB-LP-UB` (representative-
//!   point upper bound).
//! * **RKNN** (Definition 5, Section 4): all objects belonging to some kNN
//!   set within a probability range, each with its qualifying range. Four
//!   algorithms: `Naive` (AKNN at every membership level), `Basic`
//!   (critical-probability stepping, Algorithm 3), `Rss` (search space
//!   reduction, Algorithm 4 / Lemma 3) and `RssIcr` (candidate refinement
//!   acceleration, Algorithm 5 / Lemma 4), plus an exact sweep reference
//!   used as the test oracle.
//! * **Batched workloads** ([`batch`]): a [`BatchExecutor`] fans mixed
//!   AKNN/RKNN workloads across scoped worker threads over one shared
//!   engine ([`SharedQueryEngine`]), with deterministic output ordering
//!   and lossless per-thread cost accounting.
//! * **Dynamic indexes** ([`epoch`]): a [`Versioned`] epoch/snapshot
//!   wrapper and the [`DynamicQueryEngine`] make index mutation
//!   (`fuzzy_index::MutableIndex`: insert/delete/update on the in-memory
//!   tree or the paged-overlay backend) safe under concurrent reads —
//!   writers publish frozen snapshots, in-flight queries keep theirs.
//! * **Approximate AKNN** ([`approx`]): candidate pools from an
//!   `fuzzy_index::ApproxIndex` backend (multi-probe LSH or VP-tree over
//!   expected centers), resolved through the exact probe loop and
//!   optionally refined friend-of-a-friend — exact distances always,
//!   recall set by the [`RecallDial`], measured by [`recall_at_k`].
//! * **Shard forests** ([`shard`]): scatter-gather over a
//!   `fuzzy_index::ShardedIndex` partition — per-shard bound-only
//!   searches under a shared τ bound ([`SharedTau`]), then one global
//!   gather phase that probes pooled candidates in the same
//!   nearest-first order a single tree would. Answers are
//!   byte-identical to the single-tree exact engine at every shard
//!   count, with identical object-probe counts; [`ShardedDynamicEngine`]
//!   adds per-shard mutation locks and shard-parallel compaction.

#![warn(missing_docs)]

pub mod aknn;
pub mod approx;
pub mod batch;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod interval;
pub mod join;
pub mod metric_search;
pub mod result;
pub mod rknn;
pub mod shard;
pub mod stats;
pub mod sweep;

pub use aknn::{AknnConfig, QueryScratch};
pub use approx::{approx_aknn, approx_aknn_with_scratch, recall_at_k, ApproxConfig, RecallDial};
pub use batch::{
    execute_caught, execute_caught_sharded, execute_one, execute_one_sharded, BatchExecutor,
    BatchOutcome, BatchRequest, BatchResponse, ThreadStats,
};
pub use engine::{QueryEngine, SharedQueryEngine};
pub use epoch::{DynamicQueryEngine, Versioned};
pub use error::QueryError;
pub use interval::{Interval, IntervalSet};
pub use join::{alpha_distance_join, JoinPair, JoinResult};
pub use metric_search::{metric_aknn, metric_aknn_brute};
pub use result::{AknnResult, DistBound, Neighbor, RknnItem, RknnResult};
pub use rknn::RknnAlgorithm;
pub use shard::{
    sharded_alpha_distance_join, ContainsId, ShardScratch, ShardedDynamicEngine,
    ShardedQueryEngine, SharedTau,
};
pub use stats::QueryStats;
