//! α-distance join — the first of the follow-up queries the paper's
//! conclusion names ("spatial join queries, reverse nearest neighbor
//! queries and skyline queries").
//!
//! Given two indexed fuzzy datasets `R` and `S`, a threshold α and a
//! distance bound ε, report every pair `(r, s)` with `d_α(r, s) ≤ ε`.
//! The algorithm is a synchronized R-tree traversal (the classical spatial
//! join) with the paper's conservative machinery lifted to node pairs:
//!
//! * node pruning — `MinDist(M_R-node, M_S-node) > ε` kills the pair;
//! * entry pruning — the Eq. 2 approximate α-cut MBRs give a per-pair
//!   lower bound `d⁻_α > ε` without touching disk;
//! * verification — surviving pairs are probed and their exact α-distance
//!   evaluated with the dual-tree closest pair, seeded with ε so the
//!   evaluation can stop early.

use crate::aknn::AknnConfig;
use crate::error::QueryError;
use crate::stats::QueryStats;
use fuzzy_core::distance::alpha_distance_bounded;
use fuzzy_core::{ObjectId, Threshold};
use fuzzy_geom::Mbr;
use fuzzy_index::{NodeAccess, NodeId, NodeView};
use fuzzy_store::ObjectStore;
use std::time::Instant;

/// One joined pair with its exact α-distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinPair {
    /// Object from the left dataset.
    pub left: ObjectId,
    /// Object from the right dataset.
    pub right: ObjectId,
    /// Exact α-distance (≤ the join radius).
    pub dist: f64,
}

/// Result of an α-distance join.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// Qualifying pairs, sorted by (left, right) id.
    pub pairs: Vec<JoinPair>,
    /// Execution costs (object accesses count both sides).
    pub stats: QueryStats,
}

/// ε-join of two indexed stores at threshold `t`:
/// `{(r, s) : d_α(r, s) ≤ radius}`.
///
/// `cfg.improved_lower_bound` toggles the Eq. 2 entry-level pruning (the
/// support-MBR `MinDist` is always applied).
pub fn alpha_distance_join<AL, AR, SL, SR, const D: usize>(
    left_tree: &AL,
    left_store: &SL,
    right_tree: &AR,
    right_store: &SR,
    t: Threshold,
    radius: f64,
    cfg: &AknnConfig,
) -> Result<JoinResult, QueryError>
where
    AL: NodeAccess<D>,
    AR: NodeAccess<D>,
    SL: ObjectStore<D>,
    SR: ObjectStore<D>,
{
    let start = Instant::now();
    let mut stats = QueryStats::default();
    let mut pairs: Vec<JoinPair> = Vec::new();

    // Candidate object pairs from the synchronized descent. Each stack
    // item carries the node rectangles (read from the parent pages), so
    // pruning a pair costs no node access.
    type NodeBox<const D: usize> = (NodeId, Mbr<D>);
    let mut candidates: Vec<(fuzzy_core::ObjectSummary<D>, fuzzy_core::ObjectSummary<D>)> =
        Vec::new();
    let mut stack: Vec<(NodeBox<D>, NodeBox<D>)> = vec![(
        (left_tree.root_id(), left_tree.root_mbr()),
        (right_tree.root_id(), right_tree.root_mbr()),
    )];
    // All pruning below runs in squared space; `radius` itself only
    // leaves plain space when the exact verification reports a distance.
    // The squared radius is inflated by a few ulps so rounding can never
    // make the (inclusive) pruning drop a pair the exact verification
    // would accept — false positives are discarded by that verification.
    let radius_sq = if radius.is_finite() {
        radius * radius * (1.0 + 4.0 * f64::EPSILON)
    } else {
        f64::INFINITY
    };
    while let Some(((nl, ml), (nr, mr))) = stack.pop() {
        if ml.min_dist_sq(&mr) > radius_sq {
            continue;
        }
        let left = left_tree.read_node(nl)?;
        let right = right_tree.read_node(nr)?;
        stats.node_accesses += 2; // one expansion on each side
        stats.node_disk_reads += left.disk_read as u64 + right.disk_read as u64;
        match (left.view(), right.view()) {
            (NodeView::Nodes(ls), NodeView::Nodes(rs)) => {
                for l in ls {
                    for r in rs {
                        stack.push(((l.id, l.mbr), (r.id, r.mbr)));
                    }
                }
            }
            (NodeView::Nodes(ls), NodeView::Entries(_)) => {
                for l in ls {
                    stack.push(((l.id, l.mbr), (nr, mr)));
                }
            }
            (NodeView::Entries(_), NodeView::Nodes(rs)) => {
                for r in rs {
                    stack.push(((nl, ml), (r.id, r.mbr)));
                }
            }
            (NodeView::Entries(les), NodeView::Entries(res)) => {
                for le in les {
                    for re in res {
                        stats.bound_evals += 1;
                        let lo_sq = if cfg.improved_lower_bound {
                            le.approx_cut_mbr(t).min_dist_sq(&re.approx_cut_mbr(t))
                        } else {
                            le.support_mbr.min_dist_sq(&re.support_mbr)
                        };
                        if lo_sq <= radius_sq {
                            candidates.push((*le, *re));
                        }
                    }
                }
            }
        }
    }
    stats.candidates = candidates.len() as u64;

    // Verification, grouped by the left object so each is probed once per
    // run of consecutive candidates.
    candidates.sort_by_key(|(l, r)| (l.id, r.id));
    let mut current_left: Option<(ObjectId, std::sync::Arc<fuzzy_core::FuzzyObject<D>>)> = None;
    for (le, re) in candidates {
        let lobj = match &current_left {
            Some((id, obj)) if *id == le.id => obj.clone(),
            _ => {
                let probe = left_store.probe_traced(le.id)?;
                stats.object_accesses += probe.disk_read as u64;
                current_left = Some((le.id, probe.object.clone()));
                probe.object
            }
        };
        let rprobe = right_store.probe_traced(re.id)?;
        stats.object_accesses += rprobe.disk_read as u64;
        let robj = rprobe.object;
        stats.distance_evals += 1;
        // Seed with radius (inclusive): anything farther is pruned inside.
        // The left object is reused across its run of candidates, so it
        // goes in the kernel's reusable-side slot (second argument).
        if let Some(d) =
            alpha_distance_bounded(&robj, &lobj, t, radius + f64::EPSILON * radius.max(1.0))
        {
            if d <= radius {
                pairs.push(JoinPair { left: le.id, right: re.id, dist: d });
            }
        }
    }
    pairs.sort_by_key(|p| (p.left, p.right));

    stats.wall = start.elapsed();
    Ok(JoinResult { pairs, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::distance::alpha_distance_brute;
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;
    use fuzzy_index::{RTree, RTreeConfig};
    use fuzzy_store::MemStore;

    fn blob(id: u64, cx: f64, cy: f64, seed: u64) -> FuzzyObject<2> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = vec![Point::xy(cx, cy)];
        let mut mus = vec![1.0];
        for _ in 1..25 {
            let r = rnd();
            let th = rnd() * std::f64::consts::TAU;
            pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
            mus.push((((1.0 - r) * 10.0).round() / 10.0).clamp(0.1, 1.0));
        }
        FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
    }

    fn dataset(n: usize, base: u64, offset: f64) -> MemStore<2> {
        let mut state = base | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        MemStore::from_objects(
            (0..n).map(|i| blob(i as u64, rnd() * 30.0 + offset, rnd() * 30.0, base + i as u64)),
        )
        .unwrap()
    }

    fn brute_join(
        l: &MemStore<2>,
        r: &MemStore<2>,
        t: Threshold,
        radius: f64,
    ) -> Vec<(ObjectId, ObjectId)> {
        let mut out = Vec::new();
        for ls in l.summaries() {
            let lo = l.probe(ls.id).unwrap();
            for rs in r.summaries() {
                let ro = r.probe(rs.id).unwrap();
                if alpha_distance_brute(&lo, &ro, t).unwrap() <= radius {
                    out.push((ls.id, rs.id));
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn join_matches_brute_force() {
        let l = dataset(40, 3, 0.0);
        let r = dataset(35, 91, 5.0);
        let lt =
            RTree::bulk_load(l.summaries().to_vec(), RTreeConfig { max_entries: 8, min_fill: 0.4 });
        let rt =
            RTree::bulk_load(r.summaries().to_vec(), RTreeConfig { max_entries: 8, min_fill: 0.4 });
        for alpha in [0.2, 0.6, 1.0] {
            for radius in [0.5, 2.0] {
                let t = Threshold::at(alpha);
                let want = brute_join(&l, &r, t, radius);
                for cfg in [AknnConfig::basic(), AknnConfig::lb_lp_ub()] {
                    let res = alpha_distance_join(&lt, &l, &rt, &r, t, radius, &cfg).unwrap();
                    let got: Vec<(ObjectId, ObjectId)> =
                        res.pairs.iter().map(|p| (p.left, p.right)).collect();
                    assert_eq!(got, want, "α={alpha} ε={radius} {}", cfg.variant_name());
                    // Reported distances are exact and within the radius.
                    for p in &res.pairs {
                        let lo = l.probe(p.left).unwrap();
                        let ro = r.probe(p.right).unwrap();
                        let d = alpha_distance_brute(&lo, &ro, t).unwrap();
                        assert!((d - p.dist).abs() < 1e-9);
                        assert!(p.dist <= radius + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn improved_bound_prunes_more_candidates() {
        let l = dataset(60, 7, 0.0);
        let r = dataset(60, 13, 2.0);
        let lt = RTree::bulk_load(l.summaries().to_vec(), RTreeConfig::default());
        let rt = RTree::bulk_load(r.summaries().to_vec(), RTreeConfig::default());
        let t = Threshold::at(0.8);
        let basic = alpha_distance_join(&lt, &l, &rt, &r, t, 1.0, &AknnConfig::basic()).unwrap();
        let lb = alpha_distance_join(&lt, &l, &rt, &r, t, 1.0, &AknnConfig::lb()).unwrap();
        assert_eq!(basic.pairs.len(), lb.pairs.len(), "same answers regardless of pruning");
        assert!(lb.stats.candidates <= basic.stats.candidates);
    }

    #[test]
    fn empty_result_when_radius_too_small() {
        let l = dataset(10, 5, 0.0);
        let r = dataset(10, 6, 200.0); // far away
        let lt = RTree::bulk_load(l.summaries().to_vec(), RTreeConfig::default());
        let rt = RTree::bulk_load(r.summaries().to_vec(), RTreeConfig::default());
        let res =
            alpha_distance_join(&lt, &l, &rt, &r, Threshold::at(0.5), 1.0, &AknnConfig::lb_lp_ub())
                .unwrap();
        assert!(res.pairs.is_empty());
        // And the index pruned everything before touching objects.
        assert_eq!(res.stats.object_accesses, 0);
    }

    #[test]
    fn self_join_contains_diagonal() {
        let l = dataset(20, 17, 0.0);
        let lt = RTree::bulk_load(l.summaries().to_vec(), RTreeConfig::default());
        let res =
            alpha_distance_join(&lt, &l, &lt, &l, Threshold::at(0.5), 0.0, &AknnConfig::lb_lp_ub())
                .unwrap();
        // Every object joins with itself at distance 0.
        for s in l.summaries() {
            assert!(res.pairs.iter().any(|p| p.left == s.id && p.right == s.id));
        }
    }
}
