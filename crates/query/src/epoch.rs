//! Epoch/snapshot concurrency for dynamic indexes.
//!
//! The read path of this crate is lock-free by construction: every query
//! runs against `&A`/`&S` references that are never mutated. Dynamic
//! maintenance (`fuzzy_index::MutableIndex`) breaks that assumption — a
//! writer restructuring the tree underneath an in-flight best-first
//! traversal would hand it dangling node ids.
//!
//! [`Versioned`] restores the invariant with snapshot isolation:
//!
//! * Writers mutate a private **master** copy under a mutex and, on
//!   commit, **publish** a frozen clone behind an `Arc`, bumping the
//!   epoch counter.
//! * Readers grab the currently published `Arc` (one atomic-refcount
//!   bump, no tree copy) and run entire queries — AKNN, RKNN, joins,
//!   whole [`crate::BatchExecutor`] batches — against that immutable
//!   snapshot. A query admitted at epoch `e` sees exactly the epoch-`e`
//!   tree no matter how many commits land while it runs.
//!
//! The cost model: publishing clones the index once per *commit*, not per
//! mutation — batch your writes with [`Versioned::write`]'s closure. For
//! the in-memory `RTree` a clone is the arena `Vec`; for the paged
//! overlay it is the (small) delta plus an `Arc` bump on the base file.
//!
//! [`DynamicQueryEngine`] bundles a versioned index with a shared object
//! store and exposes the writer API next to snapshot readers.

use crate::engine::SharedQueryEngine;
use fuzzy_core::{ObjectId, ObjectSummary};
use fuzzy_index::{MutableIndex, NodeAccess};
use fuzzy_store::{ObjectStore, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A value with single-writer/multi-reader snapshot semantics.
///
/// See the [module docs](self) for the scheme. `T` is typically an index
/// backend (`RTree`, `OverlayRTree`), but any `Clone` state works.
#[derive(Debug)]
pub struct Versioned<T> {
    /// The writer's working copy. Mutations land here first.
    master: Mutex<T>,
    /// The frozen copy readers see. Swapped wholesale on commit.
    published: RwLock<Arc<T>>,
    /// Bumped on every commit; lets readers detect staleness cheaply.
    epoch: AtomicU64,
}

impl<T: Clone> Versioned<T> {
    /// Wrap `value`, publishing it as epoch 0.
    pub fn new(value: T) -> Self {
        let published = Arc::new(value.clone());
        Self {
            master: Mutex::new(value),
            published: RwLock::new(published),
            epoch: AtomicU64::new(0),
        }
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The currently published snapshot (an `Arc` bump — O(1)). The
    /// snapshot stays valid for as long as the handle is held, regardless
    /// of later commits.
    ///
    /// Never panics, even after a writer panicked: the published `Arc`
    /// is only ever replaced wholesale (never mutated in place), so a
    /// poisoned lock still guards a fully valid snapshot — the read
    /// recovers through [`std::sync::PoisonError::into_inner`].
    pub fn snapshot(&self) -> Arc<T> {
        let guard = self.published.read().unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(&guard)
    }

    /// Apply `mutate` to the master copy and publish the result as a new
    /// epoch. Serializes writers; readers are never blocked (they keep
    /// their snapshots, and `snapshot()` only contends for the swap
    /// instant). Batch multiple mutations in one closure to pay the
    /// publish clone once.
    pub fn write<R>(&self, mutate: impl FnOnce(&mut T) -> R) -> R {
        self.write_if(|value| (true, mutate(value)))
    }

    /// Like [`Versioned::write`], but `mutate` reports whether it
    /// actually changed the value; a `false` skips the publish clone and
    /// the epoch bump entirely. This is what keeps no-op mutations
    /// (duplicate-id insert, delete of an absent id) from cloning a large
    /// index just to republish an identical tree.
    pub fn write_if<R>(&self, mutate: impl FnOnce(&mut T) -> (bool, R)) -> R {
        let mut master = self.master.lock().unwrap_or_else(|poisoned| {
            // A previous writer panicked mid-mutation, so the master copy
            // may hold a half-applied change that was never published.
            // Roll it back to the last published snapshot — master and
            // published are identical at the end of every successful
            // commit, so this restores exactly the committed state and
            // gives `write` commit-or-rollback semantics.
            let mut guard = poisoned.into_inner();
            *guard = T::clone(&self.snapshot());
            guard
        });
        let (changed, out) = mutate(&mut master);
        if changed {
            let fresh = Arc::new(master.clone());
            // Publish while still holding the master lock so commit order
            // and epoch order agree. Recover a poisoned published lock the
            // same way `snapshot()` does: the Arc inside is always valid.
            let mut published =
                self.published.write().unwrap_or_else(|poisoned| poisoned.into_inner());
            *published = fresh;
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        out
    }
}

/// A query engine over a mutable index: epoch-snapshot reads, serialized
/// writes, one shared object store.
///
/// ```
/// use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
/// use fuzzy_geom::Point;
/// use fuzzy_index::{RTree, RTreeConfig};
/// use fuzzy_query::{AknnConfig, DynamicQueryEngine};
/// use fuzzy_store::{MemStore, ObjectStore};
///
/// let store = MemStore::from_objects((0..8).map(|i| {
///     FuzzyObject::new(
///         ObjectId(i),
///         vec![Point::xy(i as f64, 0.0), Point::xy(i as f64, 1.0)],
///         vec![1.0, 0.5],
///     )
///     .unwrap()
/// }))
/// .unwrap();
/// let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
/// let engine = DynamicQueryEngine::from_parts(tree, store);
///
/// // Readers pin a snapshot; writers publish new epochs.
/// let reader = engine.reader();
/// engine.delete(ObjectId(3)).unwrap();
/// assert_eq!(engine.epoch(), 1);
///
/// let q = reader.store().probe(ObjectId(0)).unwrap();
/// // The pinned snapshot still sees all 8 objects ...
/// let pinned = reader.aknn(&q, 8, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
/// assert_eq!(pinned.neighbors.len(), 8);
/// // ... while a fresh reader sees 7.
/// let fresh = engine.reader().aknn(&q, 8, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
/// assert_eq!(fresh.neighbors.len(), 7);
/// ```
pub struct DynamicQueryEngine<A, S, const D: usize> {
    index: Arc<Versioned<A>>,
    store: Arc<S>,
}

/// Adapt a `Result<bool>` mutation outcome for [`Versioned::write_if`]:
/// publish only when the mutation reports it changed the index.
fn changed(out: Result<bool, StoreError>) -> (bool, Result<bool, StoreError>) {
    (matches!(out, Ok(true)), out)
}

impl<A, S, const D: usize> Clone for DynamicQueryEngine<A, S, D> {
    fn clone(&self) -> Self {
        Self { index: Arc::clone(&self.index), store: Arc::clone(&self.store) }
    }
}

impl<A, S, const D: usize> DynamicQueryEngine<A, S, D>
where
    A: MutableIndex<D> + Clone,
    S: ObjectStore<D>,
{
    /// Take ownership of an index and a store.
    pub fn from_parts(index: A, store: S) -> Self {
        Self { index: Arc::new(Versioned::new(index)), store: Arc::new(store) }
    }

    /// Bundle an already-shared store with a fresh versioned index.
    pub fn new(index: A, store: Arc<S>) -> Self {
        Self { index: Arc::new(Versioned::new(index)), store }
    }

    /// The versioned index (for direct `write`/`snapshot` access).
    pub fn versioned(&self) -> &Versioned<A> {
        &self.index
    }

    /// The shared object store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Epoch of the published snapshot.
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// A [`SharedQueryEngine`] pinned to the current epoch: hand it to
    /// worker threads or a [`crate::BatchExecutor`] and every query it
    /// answers sees one consistent tree, however many commits land
    /// meanwhile.
    pub fn reader(&self) -> SharedQueryEngine<A, S, D> {
        SharedQueryEngine::new(self.index.snapshot(), Arc::clone(&self.store))
    }

    /// Insert one summary (its own epoch). Returns `Ok(false)` on a
    /// duplicate id — a no-op that publishes no new epoch. Use
    /// [`Versioned::write`] via [`Self::versioned`] to batch many
    /// mutations into one publish.
    pub fn insert(&self, entry: ObjectSummary<D>) -> Result<bool, StoreError> {
        self.index.write_if(|tree| changed(tree.insert_summary(entry)))
    }

    /// Delete by object id. `Ok(false)` when absent (no epoch published).
    pub fn delete(&self, id: ObjectId) -> Result<bool, StoreError> {
        self.index.write_if(|tree| changed(tree.delete_id(id)))
    }

    /// Replace a summary (its own epoch). `Ok(true)` when it replaced an
    /// existing entry.
    pub fn update(&self, entry: ObjectSummary<D>) -> Result<bool, StoreError> {
        // An update always inserts, so the tree always changed.
        self.index.write(|tree| tree.update_summary(entry))
    }

    /// Number of live objects in the published snapshot.
    pub fn len(&self) -> usize {
        NodeAccess::len(self.index.snapshot().as_ref())
    }

    /// True when the published snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aknn::AknnConfig;
    use fuzzy_core::FuzzyObject;
    use fuzzy_geom::Point;
    use fuzzy_index::{RTree, RTreeConfig};
    use fuzzy_store::MemStore;

    fn summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
        let obj = FuzzyObject::new(
            ObjectId(id),
            vec![Point::xy(x, y), Point::xy(x + 0.4, y + 0.4)],
            vec![1.0, 0.5],
        )
        .unwrap();
        ObjectSummary::from_object(&obj)
    }

    fn objects(n: u64) -> Vec<FuzzyObject<2>> {
        (0..n)
            .map(|i| {
                let (x, y) = ((i % 16) as f64 * 2.0, (i / 16) as f64 * 2.0);
                FuzzyObject::new(
                    ObjectId(i),
                    vec![Point::xy(x, y), Point::xy(x + 0.4, y + 0.4)],
                    vec![1.0, 0.5],
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn versioned_snapshots_are_frozen() {
        let v = Versioned::new(vec![1, 2, 3]);
        let snap = v.snapshot();
        v.write(|xs| xs.push(4));
        assert_eq!(*snap, vec![1, 2, 3], "pinned snapshot unchanged");
        assert_eq!(*v.snapshot(), vec![1, 2, 3, 4]);
        assert_eq!(v.epoch(), 1);
    }

    #[test]
    fn concurrent_readers_see_consistent_epochs() {
        // Writers churn the tree while readers hammer snapshots; every
        // query must observe an internally consistent tree (validate() on
        // the snapshot plus a successful AKNN).
        let store = MemStore::from_objects(objects(64)).unwrap();
        let tree = RTree::bulk_load(
            store.summaries().to_vec(),
            RTreeConfig { max_entries: 8, min_fill: 0.4 },
        );
        let engine = DynamicQueryEngine::from_parts(tree, store);
        let q = engine.store().probe(ObjectId(0)).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..2 {
                let engine = engine.clone();
                let q = q.clone();
                scope.spawn(move || {
                    for _ in 0..60 {
                        let reader = engine.reader();
                        reader.tree().validate().expect("snapshot is structurally sound");
                        let k = 5.min(fuzzy_index::NodeAccess::len(reader.tree()));
                        if k > 0 {
                            let res = reader.aknn(&q, k, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
                            assert_eq!(res.neighbors.len(), k);
                        }
                    }
                });
            }
            let writer = engine.clone();
            scope.spawn(move || {
                for round in 0..30u64 {
                    let id = 100 + round;
                    assert!(writer.insert(summary(id, (round % 9) as f64, 40.0)).unwrap());
                    if round % 3 == 0 {
                        assert!(writer.delete(ObjectId(round)).unwrap());
                    }
                }
            });
        });
        assert_eq!(engine.epoch(), 30 + 10);
        assert_eq!(engine.len(), 64 + 30 - 10);
        engine.versioned().snapshot().validate().unwrap();
    }

    #[test]
    fn panicked_commit_leaves_readers_on_last_snapshot() {
        let v = Versioned::new(vec![1, 2]);

        // A writer that mutates the master copy and then panics before
        // its commit: the mutation must never become visible.
        let v_ref = &v;
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            v_ref.write(|xs| {
                xs.push(9);
                panic!("writer dies mid-mutation");
            });
        }));
        assert!(unwound.is_err(), "the injected panic must propagate to the caller");

        // Readers keep working and still see the last published state.
        assert_eq!(*v.snapshot(), vec![1, 2], "readers serve the pre-panic snapshot");
        assert_eq!(v.epoch(), 0, "the aborted commit published no epoch");

        // A later writer succeeds and does not resurrect the half-applied
        // mutation: master was rolled back to the published snapshot.
        v.write(|xs| xs.push(3));
        assert_eq!(*v.snapshot(), vec![1, 2, 3]);
        assert_eq!(v.epoch(), 1);
    }

    #[test]
    fn noop_mutations_publish_no_epoch() {
        let store = MemStore::from_objects(objects(16)).unwrap();
        let existing = store.summaries()[3];
        let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
        let engine = DynamicQueryEngine::from_parts(tree, store);
        let snap = engine.versioned().snapshot();
        assert!(!engine.delete(ObjectId(9999)).unwrap(), "unknown id");
        assert!(!engine.insert(existing).unwrap(), "duplicate id");
        assert_eq!(engine.epoch(), 0, "no-ops must not publish");
        assert!(
            Arc::ptr_eq(&snap, &engine.versioned().snapshot()),
            "published snapshot must be untouched by no-ops"
        );
        assert!(engine.delete(ObjectId(3)).unwrap());
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn batched_writes_publish_once() {
        let store = MemStore::from_objects(objects(16)).unwrap();
        let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
        let engine = DynamicQueryEngine::from_parts(tree, store);
        engine.versioned().write(|tree| {
            for i in 100..150u64 {
                assert!(tree.insert_summary(summary(i, i as f64, 0.0)).unwrap());
            }
        });
        assert_eq!(engine.epoch(), 1, "one commit, one epoch");
        assert_eq!(engine.len(), 66);
    }
}
