//! Per-query cost accounting.

use std::ops::AddAssign;
use std::time::Duration;

/// Costs incurred by one query execution. `object_accesses` is the paper's
/// headline metric; the rest support the runtime figures and ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Objects retrieved from the store (Figures 11/13/15a).
    pub object_accesses: u64,
    /// R-tree nodes expanded (logical node accesses — identical across
    /// index backends and thread counts).
    pub node_accesses: u64,
    /// Node expansions that touched the backing medium: buffer-pool
    /// misses of a `PagedRTree`, always 0 for the in-memory tree. Like a
    /// shared `CachedStore`'s hit/miss split, this depends on how
    /// concurrent queries interleave on the shared pool.
    pub node_disk_reads: u64,
    /// Exact α-distance evaluations (dual-tree closest pair runs).
    pub distance_evals: u64,
    /// Distance-profile computations (RKNN refinement).
    pub profile_computations: u64,
    /// Lower/upper bound evaluations (cheap, CPU only).
    pub bound_evals: u64,
    /// Internal AKNN invocations (RKNN algorithms).
    pub aknn_calls: u64,
    /// Candidate set size after pruning (RSS/ICR).
    pub candidates: u64,
    /// Wall-clock time of the query (Figures 12/14/15b).
    pub wall: Duration,
}

impl AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: Self) {
        self.object_accesses += rhs.object_accesses;
        self.node_accesses += rhs.node_accesses;
        self.node_disk_reads += rhs.node_disk_reads;
        self.distance_evals += rhs.distance_evals;
        self.profile_computations += rhs.profile_computations;
        self.bound_evals += rhs.bound_evals;
        self.aknn_calls += rhs.aknn_calls;
        self.candidates += rhs.candidates;
        self.wall += rhs.wall;
    }
}

impl QueryStats {
    /// Averages a collection of per-query stats (for experiment tables).
    pub fn mean(samples: &[QueryStats]) -> QueryStats {
        if samples.is_empty() {
            return QueryStats::default();
        }
        let mut total = QueryStats::default();
        for s in samples {
            total += *s;
        }
        let n = samples.len() as u64;
        QueryStats {
            object_accesses: total.object_accesses / n,
            node_accesses: total.node_accesses / n,
            node_disk_reads: total.node_disk_reads / n,
            distance_evals: total.distance_evals / n,
            profile_computations: total.profile_computations / n,
            bound_evals: total.bound_evals / n,
            aknn_calls: total.aknn_calls / n,
            candidates: total.candidates / n,
            wall: total.wall / n as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a =
            QueryStats { object_accesses: 3, wall: Duration::from_millis(5), ..Default::default() };
        let b = QueryStats {
            object_accesses: 2,
            node_accesses: 7,
            wall: Duration::from_millis(10),
            ..Default::default()
        };
        a += b;
        assert_eq!(a.object_accesses, 5);
        assert_eq!(a.node_accesses, 7);
        assert_eq!(a.wall, Duration::from_millis(15));
    }

    #[test]
    fn mean_divides() {
        let samples = vec![
            QueryStats { object_accesses: 10, ..Default::default() },
            QueryStats { object_accesses: 20, ..Default::default() },
        ];
        assert_eq!(QueryStats::mean(&samples).object_accesses, 15);
        assert_eq!(QueryStats::mean(&[]).object_accesses, 0);
    }
}
