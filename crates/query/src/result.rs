//! Query result types.

use crate::interval::IntervalSet;
use crate::stats::QueryStats;
use fuzzy_core::ObjectId;
use std::fmt;

/// Knowledge about a neighbour's α-distance.
///
/// The lazy-probe optimization (§3.3) can *confirm* an object belongs to
/// the top-k without ever retrieving it — in that case only a bound
/// interval is known. Result sets are order-insensitive per Definition 4,
/// so this is faithful to the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DistBound {
    /// The object was probed; the distance is exact.
    Exact(f64),
    /// Confirmed via bounds without probing.
    Bounded {
        /// Lower bound `d⁻_α`.
        lo: f64,
        /// Upper bound `d⁺_α`.
        hi: f64,
    },
}

impl DistBound {
    /// The lower end of the knowledge interval.
    pub fn lo(&self) -> f64 {
        match *self {
            DistBound::Exact(d) => d,
            DistBound::Bounded { lo, .. } => lo,
        }
    }

    /// The upper end of the knowledge interval.
    pub fn hi(&self) -> f64 {
        match *self {
            DistBound::Exact(d) => d,
            DistBound::Bounded { hi, .. } => hi,
        }
    }
}

/// One AKNN neighbour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The object.
    pub id: ObjectId,
    /// What is known about its α-distance.
    pub dist: DistBound,
}

impl fmt::Display for Neighbor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dist {
            DistBound::Exact(d) => write!(f, "{} @ {d:.6}", self.id),
            DistBound::Bounded { lo, hi } => write!(f, "{} @ [{lo:.6}, {hi:.6}]", self.id),
        }
    }
}

/// Result of an AKNN query.
#[derive(Clone, Debug)]
pub struct AknnResult {
    /// The k nearest objects (confirmation order; ties broken by id).
    pub neighbors: Vec<Neighbor>,
    /// Execution costs.
    pub stats: QueryStats,
}

impl AknnResult {
    /// Ids of the neighbours.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.neighbors.iter().map(|n| n.id).collect()
    }
}

/// One RKNN answer item: an object and its qualifying range `I_A`.
#[derive(Clone, Debug)]
pub struct RknnItem {
    /// The object.
    pub id: ObjectId,
    /// The sub-ranges of the query range on which the object belongs to
    /// the kNN set.
    pub range: IntervalSet,
}

impl fmt::Display for RknnItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.id, self.range)
    }
}

/// Result of an RKNN query.
#[derive(Clone, Debug)]
pub struct RknnResult {
    /// Answer items, sorted by object id (deterministic for comparison).
    pub items: Vec<RknnItem>,
    /// Execution costs.
    pub stats: QueryStats,
}

impl RknnResult {
    /// Look up the qualifying range of an object.
    pub fn range_of(&self, id: ObjectId) -> Option<&IntervalSet> {
        self.items.iter().find(|i| i.id == id).map(|i| &i.range)
    }

    /// Compare answer sets up to endpoint tolerance (test helper).
    pub fn approx_eq(&self, other: &RknnResult, tol: f64) -> bool {
        self.items.len() == other.items.len()
            && self
                .items
                .iter()
                .zip(&other.items)
                .all(|(a, b)| a.id == b.id && a.range.approx_eq(&b.range, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    #[test]
    fn dist_bound_accessors() {
        assert_eq!(DistBound::Exact(2.0).lo(), 2.0);
        assert_eq!(DistBound::Exact(2.0).hi(), 2.0);
        let b = DistBound::Bounded { lo: 1.0, hi: 3.0 };
        assert_eq!(b.lo(), 1.0);
        assert_eq!(b.hi(), 3.0);
    }

    #[test]
    fn display_forms() {
        let n = Neighbor { id: ObjectId(3), dist: DistBound::Exact(1.25) };
        assert_eq!(n.to_string(), "#3 @ 1.250000");
        let item = RknnItem {
            id: ObjectId(7),
            range: IntervalSet::from_interval(Interval::closed(0.3, 0.6)),
        };
        assert_eq!(item.to_string(), "⟨#7, [0.3, 0.6]⟩");
    }

    #[test]
    fn range_lookup() {
        let r = RknnResult {
            items: vec![RknnItem {
                id: ObjectId(1),
                range: IntervalSet::from_interval(Interval::closed(0.2, 0.4)),
            }],
            stats: QueryStats::default(),
        };
        assert!(r.range_of(ObjectId(1)).is_some());
        assert!(r.range_of(ObjectId(2)).is_none());
    }
}
