//! Query-level errors.

use fuzzy_store::StoreError;
use std::fmt;

/// Errors raised by the query processor.
#[derive(Debug)]
pub enum QueryError {
    /// Object store failure during a probe.
    Store(StoreError),
    /// The query object's α-cut is empty at the requested threshold (only
    /// possible for strict thresholds at the top membership level).
    EmptyQueryCut,
    /// `k` must be at least 1.
    ZeroK,
    /// A probability must lie in `(0, 1]`, and a range `[αs, αe]` must
    /// satisfy `0 < αs ≤ αe ≤ 1`.
    InvalidProbability {
        /// What was supplied.
        value: f64,
    },
    /// Malformed probability range.
    InvalidRange {
        /// Range start.
        start: f64,
        /// Range end.
        end: f64,
    },
    /// The query's deadline expired before the traversal finished. The
    /// engine checks the deadline at expansion points (node reads, object
    /// probes, refinement steps), so an overdue query aborts promptly
    /// instead of burning its worker; partial results are discarded.
    DeadlineExceeded,
    /// The query panicked inside a batch/server worker. The unwind was
    /// caught at the per-query boundary; the message is the panic payload
    /// when it was a string.
    Panicked {
        /// The panic payload, if it was a `&str`/`String`.
        message: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Store(e) => write!(f, "store error: {e}"),
            Self::EmptyQueryCut => write!(f, "query object has an empty cut at this threshold"),
            Self::ZeroK => write!(f, "k must be at least 1"),
            Self::InvalidProbability { value } => {
                write!(f, "probability {value} outside (0, 1]")
            }
            Self::InvalidRange { start, end } => {
                write!(f, "invalid probability range [{start}, {end}]")
            }
            Self::DeadlineExceeded => write!(f, "deadline exceeded"),
            Self::Panicked { message } => write!(f, "query panicked: {message}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}
