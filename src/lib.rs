//! # fuzzy-knn — K-Nearest Neighbor Search for Fuzzy Objects
//!
//! A production-quality Rust implementation of
//! *"K-Nearest Neighbor Search for Fuzzy Objects"*
//! (Zheng, Fung, Zhou — SIGMOD 2010): k-nearest-neighbour queries over
//! objects with indeterminate boundaries, such as probabilistic
//! segmentation masks from biomedical imaging or vague regions in GIS.
//!
//! A **fuzzy object** is a finite set of points, each carrying a
//! membership value `µ ∈ (0, 1]`. The **α-distance** between two fuzzy
//! objects is the closest-pair distance between their α-cuts
//! (`{a : µ(a) ≥ α}`) — a monotone staircase in α that lets users choose
//! the confidence level of a search:
//!
//! * **AKNN** — the k nearest objects at one probability threshold α;
//! * **RKNN** — every object that is a k-nearest neighbour anywhere in a
//!   probability range `[αs, αe]`, with its exact qualifying sub-ranges.
//!
//! ## Quick start
//!
//! ```
//! use fuzzy_knn::prelude::*;
//!
//! // Generate a small synthetic dataset (the paper's §6.1 workload).
//! let gen = SyntheticConfig {
//!     num_objects: 200,
//!     points_per_object: 100,
//!     ..SyntheticConfig::default()
//! };
//! let store = MemStore::from_objects(gen.generate()).unwrap();
//!
//! // Index the summaries (objects stay in the store).
//! let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
//! let engine = QueryEngine::new(&tree, &store);
//!
//! // 5 nearest objects at confidence 0.5.
//! let query = gen.query_object(1);
//! let knn = engine.aknn(&query, 5, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
//! assert_eq!(knn.neighbors.len(), 5);
//!
//! // All 3NN members across confidences 0.3..0.7, with qualifying ranges.
//! let rknn = engine
//!     .rknn(&query, 3, 0.3, 0.7, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub())
//!     .unwrap();
//! assert!(!rknn.items.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`geom`] | points, MBRs, MinDist/MaxDist, hulls, conservative lines, kd-trees, closest pair |
//! | [`core`] | fuzzy object model, α-cuts, summaries, α-distance, profiles, critical sets |
//! | [`store`] | disk/memory object stores with the paper's object-access accounting, plus the page-cache buffer pool |
//! | [`index`] | R-trees behind the `NodeAccess` trait: in-memory `RTree` (STR bulk load + R* insert) and the disk-resident `PagedRTree` |
//! | [`query`] | AKNN (Basic/LB/LB-LP/LB-LP-UB) and RKNN (Naive/Basic/RSS/RSS-ICR) |
//! | [`datagen`] | §6.1 synthetic workload + cell-like substitute for the real dataset |
//! | [`analysis`] | §5 cost model (fractal dimensions, Eq. 6–8) |

#![warn(missing_docs)]

pub use fuzzy_analysis as analysis;
pub use fuzzy_core as core;
pub use fuzzy_datagen as datagen;
pub use fuzzy_geom as geom;
pub use fuzzy_index as index;
pub use fuzzy_query as query;
pub use fuzzy_store as store;

/// One-stop imports for applications.
pub mod prelude {
    pub use fuzzy_core::{
        DistanceProfile, FuzzyObject, FuzzyObject2, FuzzyObjectBuilder, ModelError, ObjectId,
        ObjectSummary, Threshold,
    };
    pub use fuzzy_datagen::{CellConfig, DatasetKind, SyntheticConfig};
    pub use fuzzy_geom::{Mbr, Point};
    pub use fuzzy_index::{NodeAccess, PagedRTree, RTree, RTreeConfig};
    pub use fuzzy_query::{
        AknnConfig, AknnResult, BatchExecutor, BatchOutcome, BatchRequest, BatchResponse,
        DistBound, Interval, IntervalSet, Neighbor, QueryEngine, QueryError, QueryStats,
        RknnAlgorithm, RknnItem, RknnResult, SharedQueryEngine,
    };
    pub use fuzzy_store::{
        CachedStore, FileStore, FileStoreWriter, MemStore, ObjectStore, PageCache, StoreError,
    };
}
